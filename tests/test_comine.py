"""Unit and parity tests for ``repro.comine`` (trie + co-mining engine).

Two layers:

- **Trie construction** — deterministic shared-prefix merging of
  canonical edge-orderings: node counts, completion tags, path lookup,
  permutation invariance, and the structural facts the engine relies on
  (single depth-1 child; grid = 1 + 6 + 36 nodes).
- **Engine parity** — the co-miner's correctness contract: per-motif
  counts AND per-motif search counters byte-identical to a dedicated
  :class:`MackeyMiner` run, for singleton families, the full Paranjape
  grid, and generator graphs; plus sharing-stats arithmetic, chunked
  ``mine_range`` merging, and cancellation.
"""

import pytest

from repro.comine import CoMiner, FamilyResult, MotifTrie, SharingStats, co_count
from repro.graph.generators import make_dataset
from repro.graph.temporal_graph import TemporalGraph
from repro.mining.mackey import MackeyMiner
from repro.mining.multi import count_motif_family, grid_family_census
from repro.mining.parallel import MiningCancelled
from repro.motifs.catalog import (
    EVALUATION_MOTIFS,
    EXTRA_MOTIFS,
    M1,
    M2,
    PATH3,
    PING_PONG,
)
from repro.motifs.grid import paranjape_grid
from repro.motifs.motif import Motif

GRID_MOTIFS = [m for _, m in sorted(paranjape_grid().items())]


@pytest.fixture(scope="module")
def graph():
    return make_dataset("email-eu", scale=0.03, seed=7)


@pytest.fixture(scope="module")
def delta(graph):
    return max(1, graph.time_span // 20)


class TestTrieConstruction:
    def test_empty_family_raises(self):
        with pytest.raises(ValueError):
            MotifTrie([])

    def test_singleton_trie_is_a_path(self):
        trie = MotifTrie([M1])
        assert trie.family_size == 1
        assert trie.num_nodes == M1.num_edges
        assert trie.shared_nodes == 0
        assert trie.max_depth == M1.num_edges
        path = trie.path(0)
        assert [n.depth for n in path] == [1, 2, 3]
        assert path[-1].complete == [0]
        assert all(n.complete == [] for n in path[:-1])

    def test_shared_prefix_merging(self):
        # M1, M2 and PATH3 all share their first two canonical edges
        # ((0,1),(1,2)) and differ only in the third.  Unshared total =
        # 3+3+3 = 9; merged: one depth-1 node + one depth-2 node +
        # three depth-3 leaves = 5 nodes.
        trie = MotifTrie([M1, M2, PATH3])
        assert trie.unshared_node_count() == 9
        assert trie.num_nodes == 5
        assert trie.shared_nodes == 2  # the depth-1 and depth-2 prefix nodes
        d1 = trie.first_edge_node
        assert d1.edge == (0, 1)
        assert d1.motifs_below == 3

    def test_grid_trie_shape(self):
        # 6 rows x 6 cols sharing row prefixes: 1 depth-1 node, 6
        # depth-2 row nodes, 36 depth-3 leaves.
        trie = MotifTrie(GRID_MOTIFS)
        assert trie.num_nodes == 1 + 6 + 36
        assert trie.unshared_node_count() == 36 * 3
        assert trie.shared_nodes == 7
        assert trie.max_depth == 3
        leaves = [n for n in trie.nodes() if n.is_leaf]
        assert len(leaves) == 36
        assert sorted(i for n in leaves for i in n.complete) == list(range(36))

    def test_construction_is_order_independent(self):
        a = MotifTrie([M1, M2, PATH3, PING_PONG])
        b = MotifTrie([PING_PONG, PATH3, M2, M1])
        assert a.num_nodes == b.num_nodes
        assert a.shared_nodes == b.shared_nodes
        # Node structure (edge, depth) in dense-index order is identical;
        # only the family indices in `complete` follow input order.
        assert [(n.edge, n.depth) for n in a.nodes()] == [
            (n.edge, n.depth) for n in b.nodes()
        ]

    def test_duplicate_motifs_share_one_completion_node(self):
        trie = MotifTrie([M1, M1])
        assert trie.num_nodes == M1.num_edges
        assert trie.path(0)[-1].complete == [0, 1]

    def test_path_and_index_consistency(self):
        trie = MotifTrie(GRID_MOTIFS)
        nodes = trie.nodes()
        for i in range(trie.family_size):
            for node in trie.path(i):
                assert nodes[node.index] is node

    def test_render_lists_every_motif_once(self):
        text = MotifTrie([M1, M2]).render()
        assert M1.name in text and M2.name in text


class TestEngineParity:
    def test_singleton_family_equals_plain_miner(self, graph, delta):
        for motif in EVALUATION_MOTIFS + EXTRA_MOTIFS:
            solo = MackeyMiner(graph, motif, delta).mine()
            fam = CoMiner(graph, [motif], delta).mine()
            assert fam.counts[0] == solo.count, motif.name
            assert (
                fam.per_motif[0].as_dict() == solo.counters.as_dict()
            ), motif.name
            # A family of one shares nothing.
            assert fam.sharing.traversals_saved == 0
            assert fam.counters.as_dict() == solo.counters.as_dict()

    def test_grid_family_counts_and_counters(self, graph, delta):
        result = CoMiner(graph, GRID_MOTIFS, delta).mine()
        assert sum(result.counts) > 0
        for i, motif in enumerate(GRID_MOTIFS):
            solo = MackeyMiner(graph, motif, delta).mine()
            assert result.counts[i] == solo.count, motif.name
            assert (
                result.per_motif[i].as_dict() == solo.counters.as_dict()
            ), motif.name

    def test_sharing_stats_account_for_saved_work(self, graph, delta):
        result = CoMiner(graph, GRID_MOTIFS, delta).mine()
        s = result.sharing
        assert s.searches_unshared > s.searches
        assert s.candidates_unshared > s.candidates_scanned
        assert 0.0 < s.prefix_hit_ratio < 1.0
        assert s.traversal_sharing > 1.0
        assert s.searches_saved == s.searches_unshared - s.searches
        assert (
            s.traversals_saved == s.candidates_unshared - s.candidates_scanned
        )
        # The family aggregate is exactly the sum of what was performed.
        assert s.candidates_scanned == result.counters.candidates_scanned

    def test_mine_range_chunks_merge_to_full_run(self, graph, delta):
        miner = CoMiner(graph, [M1, M2, PATH3], delta)
        full = miner.mine()
        m = graph.num_edges
        acc = FamilyResult.empty(miner.trie)
        step = max(1, m // 7)
        for lo in range(0, m, step):
            acc.merge(miner.mine_range(lo, lo + step))
        assert acc.counts == full.counts
        assert acc.counters.as_dict() == full.counters.as_dict()
        assert [c.as_dict() for c in acc.per_motif] == [
            c.as_dict() for c in full.per_motif
        ]
        assert acc.sharing.as_dict() == full.sharing.as_dict()

    def test_payload_round_trip(self, graph, delta):
        full = CoMiner(graph, [M1, PING_PONG], delta).mine()
        again = FamilyResult.from_payload(full.as_payload())
        assert again.counts == full.counts
        assert again.sharing.as_dict() == full.sharing.as_dict()
        assert again.counters.as_dict() == full.counters.as_dict()

    def test_sharing_merge_rejects_different_families(self):
        a = SharingStats(2, 4, 6, 1, 3)
        b = SharingStats(3, 5, 9, 2, 3)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_cancel_check_raises(self, graph, delta):
        miner = CoMiner(
            graph, GRID_MOTIFS, delta, cancel_check=lambda: True
        )
        with pytest.raises(MiningCancelled):
            miner.mine()

    def test_rejects_bad_arguments(self, graph):
        with pytest.raises(ValueError):
            CoMiner(graph, [M1], -1)
        with pytest.raises(ValueError):
            CoMiner(graph, [], 10)
        with pytest.raises(ValueError):
            CoMiner(graph, [M1], 10, cancel_stride=0)

    def test_empty_graph(self):
        g = TemporalGraph([], num_nodes=2)
        result = CoMiner(g, [M1, M2], 10).mine()
        assert result.counts == [0, 0]
        # No traversal ran, so the measured ratios are undefined and
        # fail loud; only the structural (shape-only) ratio remains.
        assert not result.sharing.populated
        assert result.sharing.structural_prefix_ratio > 0
        with pytest.raises(ValueError):
            result.sharing.prefix_hit_ratio
        with pytest.raises(ValueError):
            result.sharing.traversal_sharing
        # The payload round-trip still works without the measured keys.
        d = result.sharing.as_dict()
        assert "prefix_hit_ratio" not in d
        assert "structural_prefix_ratio" in d

    def test_co_count_convenience(self, graph, delta):
        counts = co_count(graph, [M1, M2], delta)
        assert counts == {
            M1.name: MackeyMiner(graph, M1, delta).mine().count,
            M2.name: MackeyMiner(graph, M2, delta).mine().count,
        }

    def test_disconnected_motif_family(self, graph):
        # Neither-endpoint-mapped scans (edge-list tail) must also be
        # charged identically to the dedicated miner.
        disconnected = Motif.from_labels(
            [("A", "B"), ("C", "D")], name="two-islands"
        )
        delta = max(1, graph.time_span // 50)
        solo = MackeyMiner(graph, disconnected, delta).mine()
        fam = CoMiner(graph, [disconnected, M1], delta).mine()
        assert fam.counts[0] == solo.count
        assert fam.per_motif[0].as_dict() == solo.counters.as_dict()


class TestCensusEngine:
    def test_census_engines_agree(self, graph, delta):
        mackey = grid_family_census(graph, delta, engine="mackey")
        comine = grid_family_census(graph, delta, engine="comine")
        assert comine.engine == "comine"
        assert comine.counts == mackey.counts
        assert {k: v.as_dict() for k, v in comine.per_motif.items()} == {
            k: v.as_dict() for k, v in mackey.per_motif.items()
        }
        assert comine.sharing is not None
        assert mackey.sharing is None
        # The co-mining census does strictly less search work.
        assert (
            comine.counters.candidates_scanned
            < mackey.counters.candidates_scanned
        )

    def test_count_motif_family_validates_arguments(self, graph):
        with pytest.raises(ValueError):
            count_motif_family(graph, [], 10)
        with pytest.raises(ValueError):
            count_motif_family(graph, [M1], 10, engine="quantum")
        with pytest.raises(ValueError):
            count_motif_family(graph, [M1], 10, engine="comine", memoize=True)

    def test_distribution_fails_loud_on_zero_total(self):
        g = TemporalGraph([], num_nodes=2)
        census = count_motif_family(g, [M1, M2], 10)
        assert census.total() == 0
        with pytest.raises(ValueError):
            census.distribution()
