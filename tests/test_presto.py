"""Tests for the PRESTO-style approximate estimator."""

import math

import pytest

from repro.graph.generators import make_dataset
from repro.graph.temporal_graph import TemporalGraph
from repro.mining.mackey import count_motifs
from repro.mining.presto import PrestoEstimator
from repro.motifs.catalog import M1, PING_PONG


class TestValidation:
    def test_c_must_exceed_one(self, tiny_graph):
        with pytest.raises(ValueError):
            PrestoEstimator(tiny_graph, M1, 10, c=1.0)

    def test_empty_graph_rejected(self):
        g = TemporalGraph([], num_nodes=2)
        with pytest.raises(ValueError):
            PrestoEstimator(g, M1, 10)

    def test_sample_count_positive(self, tiny_graph):
        est = PrestoEstimator(tiny_graph, M1, 10)
        with pytest.raises(ValueError):
            est.estimate(0)

    def test_window_length(self, tiny_graph):
        est = PrestoEstimator(tiny_graph, M1, delta=20, c=1.5)
        assert est.window_length == 30


class TestEstimation:
    def test_deterministic_given_seed(self):
        g = make_dataset("email-eu", scale=0.08, seed=1)
        delta = g.time_span // 40
        a = PrestoEstimator(g, M1, delta, seed=3).estimate(10)
        b = PrestoEstimator(g, M1, delta, seed=3).estimate(10)
        assert a.estimate == b.estimate
        assert a.per_sample == b.per_sample

    def test_different_seeds_differ(self):
        g = make_dataset("email-eu", scale=0.08, seed=1)
        delta = g.time_span // 40
        a = PrestoEstimator(g, M1, delta, seed=3).estimate(12)
        b = PrestoEstimator(g, M1, delta, seed=4).estimate(12)
        assert a.per_sample != b.per_sample

    def test_converges_to_exact_count(self):
        """The estimator is unbiased: with many windows the mean should
        land within a few standard errors of the exact count."""
        g = make_dataset("email-eu", scale=0.12, seed=9)
        delta = g.time_span // 30
        exact = count_motifs(g, PING_PONG, delta)
        assert exact > 0, "fixture graph must contain instances"
        est = PrestoEstimator(g, PING_PONG, delta, c=1.5, seed=0).estimate(400)
        assert est.estimate == pytest.approx(exact, rel=0.35)
        # And the error is consistent with the reported standard error.
        assert abs(est.estimate - exact) < 5 * est.std_error

    def test_zero_when_no_instances(self):
        g = TemporalGraph([(0, 1, 0), (0, 1, 1000), (0, 1, 2000)])
        est = PrestoEstimator(g, M1, delta=10, seed=1).estimate(20)
        assert est.estimate == 0.0
        assert est.relative_std_error() == math.inf

    def test_counters_accumulate_window_work(self):
        g = make_dataset("email-eu", scale=0.08, seed=1)
        delta = g.time_span // 40
        est = PrestoEstimator(g, M1, delta, seed=0).estimate(10)
        assert est.counters.root_tasks > 0

    def test_single_sample_has_infinite_std_error(self, tiny_graph):
        est = PrestoEstimator(tiny_graph, M1, 25, seed=0).estimate(1)
        assert est.std_error == math.inf
        assert est.num_samples == 1
