"""Tests for the task context (paper §IV-B)."""

import pytest

from repro.mining.context import MiningContext
from repro.motifs.catalog import M1, TWO_CYCLE_RETURN
from repro.motifs.motif import Motif


@pytest.fixture
def ctx():
    return MiningContext(M1, delta=25)


class TestBookkeeping:
    def test_initial_state(self, ctx):
        assert ctx.depth == 0
        assert ctx.last_edge == -1
        assert ctx.t_limit is None
        assert not ctx.is_complete()
        assert ctx.node_map() == (-1, -1, -1)

    def test_first_bookkeep_sets_window(self, ctx):
        ctx.bookkeep(0, 10, 11, t=100)
        assert ctx.depth == 1
        assert ctx.t_limit == 125
        assert ctx.graph_node(0) == 10
        assert ctx.graph_node(1) == 11
        assert ctx.motif_node(10) == 0
        assert ctx.motif_node(99) == -1

    def test_full_motif_lifecycle(self, ctx):
        ctx.bookkeep(0, 10, 11, t=100)  # A->B
        ctx.bookkeep(1, 11, 12, t=110)  # B->C
        ctx.bookkeep(2, 12, 10, t=120)  # C->A
        assert ctx.is_complete()
        assert ctx.node_map() == (10, 11, 12)
        ctx.backtrack(12, 10)
        assert ctx.depth == 2
        # Nodes 12 and 10 are still held by earlier edges.
        assert ctx.graph_node(2) == 12
        ctx.backtrack(11, 12)
        assert ctx.graph_node(2) == -1  # node 12 freed
        ctx.backtrack(10, 11)
        assert ctx.depth == 0
        assert ctx.t_limit is None
        assert ctx.node_map() == (-1, -1, -1)

    def test_backtrack_on_empty_raises(self, ctx):
        with pytest.raises(RuntimeError):
            ctx.backtrack(0, 1)

    def test_edge_count_keeps_shared_nodes(self):
        ctx = MiningContext(TWO_CYCLE_RETURN, delta=100)
        ctx.bookkeep(0, 5, 6, t=0)  # A->B
        ctx.bookkeep(1, 6, 5, t=1)  # B->A
        ctx.backtrack(6, 5)
        # Both nodes still mapped by edge 0.
        assert ctx.graph_node(0) == 5
        assert ctx.graph_node(1) == 6

    def test_reset(self, ctx):
        ctx.bookkeep(0, 1, 2, t=5)
        ctx.reset()
        assert ctx.depth == 0
        assert ctx.node_map() == (-1, -1, -1)
        assert not ctx.e_count


class TestAccepts:
    def test_structural_match_required(self, ctx):
        ctx.bookkeep(0, 10, 11, t=100)  # next edge must be 11 -> fresh
        assert ctx.accepts(11, 12, 105)
        assert not ctx.accepts(12, 13, 105)  # src must be node 11
        assert not ctx.accepts(11, 10, 105)  # dst 10 already mapped to A
        assert not ctx.accepts(11, 11, 105)  # dst must differ from src

    def test_temporal_window_enforced(self, ctx):
        ctx.bookkeep(0, 10, 11, t=100)
        assert ctx.accepts(11, 12, 125)  # inclusive bound
        assert not ctx.accepts(11, 12, 126)

    def test_both_endpoints_fresh(self):
        m = Motif([(0, 1), (2, 3)])  # disconnected second edge
        ctx = MiningContext(m, delta=50)
        ctx.bookkeep(0, 1, 2, t=0)
        assert ctx.accepts(3, 4, 10)
        assert not ctx.accepts(3, 3, 10)  # same graph node for two motif nodes
        assert not ctx.accepts(1, 4, 10)  # node 1 already mapped


class TestContextBytes:
    def test_context_fits_paper_budget(self):
        """§IV-B: an 8-edge motif context needs about 178 B."""
        path8 = Motif([(i, i + 1) for i in range(8)])  # 9 nodes, 8 edges
        size = MiningContext(path8, delta=1).context_bytes()
        assert 100 <= size <= 200

    def test_smaller_motifs_use_less(self):
        small = MiningContext(M1, delta=1).context_bytes()
        big = MiningContext(Motif([(i, i + 1) for i in range(8)]), delta=1)
        assert small < big.context_bytes()
