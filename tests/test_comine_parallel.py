"""Sharded co-mining: ``count_family`` on both worker pools.

The family chunk is as idempotent as the per-motif chunk — one shared
traversal over a root range, merged commutatively — so it must compose
with both the zero-copy :class:`MiningPool` and the fault-tolerant
:class:`SupervisedMiningPool` without changing a single byte of any
motif's count or counters, even under injected worker kills.
"""

import pytest

from repro.comine import CoMiner
from repro.graph.generators import make_dataset
from repro.mining.parallel import MiningCancelled, MiningPool
from repro.motifs.catalog import M1, M2, PATH3, PING_PONG
from repro.motifs.grid import paranjape_grid
from repro.resilience.faults import FaultPlan
from repro.resilience.supervisor import SupervisedMiningPool

FAMILY = [M1, M2, PATH3, PING_PONG]
GRID_MOTIFS = [m for _, m in sorted(paranjape_grid().items())]


@pytest.fixture(scope="module")
def graph():
    return make_dataset("email-eu", scale=0.08, seed=3)


@pytest.fixture(scope="module")
def delta(graph):
    return max(1, graph.time_span // 40)


@pytest.fixture(scope="module")
def serial(graph, delta):
    return CoMiner(graph, FAMILY, delta).mine()


def assert_family_parity(fam, serial, family):
    assert [r.count for r in fam.results] == serial.counts
    for motif, r, expected in zip(family, fam.results, serial.per_motif):
        assert r.counters.as_dict() == expected.as_dict(), motif.name
    assert fam.counters.as_dict() == serial.counters.as_dict()
    assert fam.sharing.as_dict() == serial.sharing.as_dict()


class TestMiningPoolFamily:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_count_family_matches_serial_cominer(
        self, graph, delta, serial, workers
    ):
        with MiningPool(graph, workers) as pool:
            fam = pool.count_family(FAMILY, delta)
        assert_family_parity(fam, serial, FAMILY)
        assert fam.num_workers == workers
        assert fam.num_chunks > 0

    def test_count_family_matches_count_many(self, graph, delta):
        with MiningPool(graph, 2) as pool:
            many = pool.count_many(FAMILY, delta)
            fam = pool.count_family(FAMILY, delta)
        for a, b in zip(many, fam.results):
            assert a.count == b.count
            assert a.counters.as_dict() == b.counters.as_dict()

    def test_count_family_empty_family_raises(self, graph):
        with MiningPool(graph, 1) as pool:
            with pytest.raises(ValueError):
                pool.count_family([], 10)

    def test_count_family_cancel(self, graph, delta):
        with MiningPool(graph, 2) as pool:
            with pytest.raises(MiningCancelled):
                pool.count_family(GRID_MOTIFS, delta, cancel_check=lambda: True)
            # The pool survives a cancelled family run.
            fam = pool.count_family(FAMILY, delta)
            assert sum(r.count for r in fam.results) == sum(
                CoMiner(graph, FAMILY, delta).mine().counts
            )

    def test_closed_pool_rejects_family(self, graph):
        pool = MiningPool(graph, 1)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.count_family(FAMILY, 10)


class TestSupervisedFamily:
    def test_supervised_matches_serial_cominer(self, graph, delta, serial):
        with SupervisedMiningPool(
            graph, 2, chunk_timeout_s=None
        ) as pool:
            fam = pool.count_family(FAMILY, delta)
        assert_family_parity(fam, serial, FAMILY)

    def test_parity_survives_injected_worker_kills(self, graph, delta, serial):
        plan = FaultPlan.kill_workers({0: 2, 1: 1})
        with SupervisedMiningPool(
            graph,
            3,
            chunk_timeout_s=None,
            fault_plan=plan,
            respawn_budget=10,
        ) as pool:
            fam = pool.count_family(FAMILY, delta)
            stats = pool.stats.as_dict()
        assert stats["worker_deaths"] >= 2
        assert stats["chunk_retries"] >= 1
        assert_family_parity(fam, serial, FAMILY)

    def test_parity_when_every_worker_dies_once(self, graph, delta, serial):
        # Every worker (original and respawned) dies at its second
        # chunk; the respawn budget keeps the run completable.
        plan = FaultPlan.kill_every_worker(at_chunk=2)
        with SupervisedMiningPool(
            graph,
            2,
            chunk_timeout_s=None,
            fault_plan=plan,
            respawn_budget=50,
        ) as pool:
            fam = pool.count_family(FAMILY, delta)
            stats = pool.stats.as_dict()
        assert stats["worker_deaths"] >= 2
        assert_family_parity(fam, serial, FAMILY)

    def test_family_and_motif_chunks_interleave_on_one_pool(
        self, graph, delta, serial
    ):
        # The kind-dispatched protocol serves both chunk types from the
        # same resident workers.
        with SupervisedMiningPool(graph, 2, chunk_timeout_s=None) as pool:
            solo = pool.count(M1, delta)
            fam = pool.count_family(FAMILY, delta)
            solo2 = pool.count(M1, delta)
        assert solo.count == serial.counts[0] == fam.results[0].count
        assert solo.counters.as_dict() == solo2.counters.as_dict()

    def test_supervised_family_cancel(self, graph, delta):
        with SupervisedMiningPool(graph, 2, chunk_timeout_s=None) as pool:
            with pytest.raises(MiningCancelled):
                pool.count_family(FAMILY, delta, cancel_check=lambda: True)


class TestServiceBatchLane:
    def test_multi_motif_batches_are_comined(self, graph, delta):
        from repro.service import MotifService

        with MotifService() as svc:
            svc.register_graph(graph)
            svc.scheduler.pause()
            pending = [
                svc.submit(graph, motif, delta) for motif in FAMILY
            ]
            svc.scheduler.resume()
            results = [p.result() for p in pending]
            assert all(r.ok for r in results)
            metrics = svc.metrics()
        assert metrics.comined_batches >= 1
        serial = CoMiner(graph, FAMILY, delta).mine()
        for r, count, counters in zip(
            results, serial.counts, serial.per_motif
        ):
            assert r.payload["count"] == count
            assert r.payload["counters"] == counters.as_dict()

    def test_singleton_batches_skip_comine(self, graph, delta):
        from repro.service import MotifService

        with MotifService() as svc:
            svc.register_graph(graph)
            assert svc.query(graph, M1, delta).ok
            assert svc.metrics().comined_batches == 0
