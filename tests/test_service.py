"""Unit tests for the serving layer's building blocks.

Covers the pieces below the scheduler: the ref-counted
:class:`GraphRegistry`, the bytes-bounded :class:`ResultCache`, the
latency/metrics helpers and the query/payload records.  Scheduler and
end-to-end behaviour live in ``test_service_scheduler.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.graph.temporal_graph import TemporalGraph
from repro.motifs.catalog import M1, M2, motif_by_name
from repro.motifs.motif import Motif
from repro.motifs.parse import parse_motif
from repro.service import (
    GraphRegistry,
    LatencyReservoir,
    MotifQuery,
    ResultCache,
    ServiceMetrics,
    UnknownGraph,
    build_payload,
    payload_bytes,
    percentile,
)


def make_graph(shift: int = 0) -> TemporalGraph:
    """A small distinct graph per ``shift`` (distinct fingerprints)."""
    return TemporalGraph(
        [(0, 1, 5 + shift), (1, 2, 10 + shift), (2, 0, 20 + shift)]
    )


class TestGraphRegistry:
    def test_register_returns_fingerprint(self):
        reg = GraphRegistry()
        g = make_graph()
        assert reg.register(g) == g.fingerprint()
        assert g.fingerprint() in reg

    def test_register_same_content_is_idempotent(self):
        reg = GraphRegistry()
        fp1 = reg.register(make_graph())
        fp2 = reg.register(make_graph())  # same content, new object
        assert fp1 == fp2
        assert reg.resident_count == 1
        assert reg.refcount(fp1) == 2

    def test_release_decrements_then_idles(self):
        reg = GraphRegistry()
        fp = reg.register(make_graph())
        reg.register(make_graph())
        reg.release(fp)
        assert reg.refcount(fp) == 1
        assert reg.idle_count == 0
        reg.release(fp)
        assert reg.refcount(fp) == 0
        assert reg.idle_count == 1
        # Idle graphs are still resident and fetchable.
        assert reg.get(fp).num_edges == 3

    def test_idle_lru_eviction_fires_listeners(self):
        reg = GraphRegistry(max_idle=2)
        evicted = []
        reg.add_evict_listener(evicted.append)
        fps = []
        for i in range(3):
            fp = reg.register(make_graph(i))
            reg.release(fp)
            fps.append(fp)
        # Three idle graphs, limit two: the oldest idle one is evicted.
        assert evicted == [fps[0]]
        assert fps[0] not in reg
        assert fps[1] in reg and fps[2] in reg
        assert reg.evicted_total == 1

    def test_get_touches_idle_lru(self):
        reg = GraphRegistry(max_idle=2)
        evicted = []
        reg.add_evict_listener(evicted.append)
        fps = []
        for i in range(2):
            fp = reg.register(make_graph(i))
            reg.release(fp)
            fps.append(fp)
        reg.get(fps[0])  # touch the older idle graph
        fp2 = reg.register(make_graph(2))
        reg.release(fp2)
        # fps[1] is now least recently used and goes first.
        assert evicted == [fps[1]]
        assert fps[0] in reg

    def test_reregister_rescues_idle_graph(self):
        reg = GraphRegistry(max_idle=1)
        fp = reg.register(make_graph())
        reg.release(fp)
        assert reg.idle_count == 1
        assert reg.register(make_graph()) == fp
        assert reg.idle_count == 0
        assert reg.refcount(fp) == 1

    def test_names_resolve_and_evict_with_graph(self):
        reg = GraphRegistry(max_idle=0)
        fp = reg.register(make_graph(), name="wiki")
        assert reg.resolve("wiki") == fp
        assert reg.resolve(fp) == fp
        assert reg.names() == {"wiki": fp}
        reg.release(fp)  # max_idle=0: immediate eviction
        assert reg.names() == {}
        with pytest.raises(UnknownGraph):
            reg.resolve("wiki")

    def test_unknown_lookups_raise(self):
        reg = GraphRegistry()
        with pytest.raises(UnknownGraph):
            reg.get("no-such-fp")
        with pytest.raises(UnknownGraph):
            reg.release("no-such-fp")
        with pytest.raises(UnknownGraph):
            reg.resolve("no-such-name")
        with pytest.raises(UnknownGraph):
            reg.refcount("no-such-fp")

    def test_negative_max_idle_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            GraphRegistry(max_idle=-1)


def key_for(fp: str, motif: Motif = M1, delta: int = 10):
    return (fp, motif.canonical_key(), delta)


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        k = key_for("fp-a")
        assert cache.get(k) is None
        assert cache.put(k, 7, {"edges": 3})
        got = cache.get(k)
        assert got.count == 7
        assert got.counters == {"edges": 3}
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_under_byte_budget(self):
        # Each entry here estimates to 66 bytes: room for one, not two.
        cache = ResultCache(max_bytes=100)
        k1, k2 = key_for("fp-a"), key_for("fp-b")
        assert cache.put(k1, 1, {})
        assert cache.put(k2, 2, {})
        assert cache.entry_count == 1
        assert cache.get(k1) is None
        assert cache.get(k2).count == 2
        assert cache.evictions == 1

    def test_get_refreshes_lru_order(self):
        cache = ResultCache(max_bytes=140)
        k1, k2 = key_for("fp-a"), key_for("fp-b")
        assert cache.put(k1, 1, {})
        assert cache.put(k2, 2, {})
        assert cache.entry_count == 2
        cache.get(k1)  # k2 becomes the LRU victim
        cache.put(key_for("fp-c"), 3, {})
        assert cache.get(k1) is not None
        assert cache.get(k2) is None

    def test_oversized_entry_refused(self):
        cache = ResultCache(max_bytes=10)
        assert not cache.put(key_for("fp-a"), 1, {"edges": 3})
        assert cache.entry_count == 0
        assert cache.bytes_used == 0

    def test_refresh_same_key_does_not_leak_bytes(self):
        cache = ResultCache()
        k = key_for("fp-a")
        cache.put(k, 1, {"edges": 3})
        before = cache.bytes_used
        cache.put(k, 2, {"edges": 3})
        assert cache.bytes_used == before
        assert cache.entry_count == 1
        assert cache.get(k).count == 2

    def test_invalidate_fingerprint(self):
        cache = ResultCache()
        cache.put(key_for("fp-a", M1), 1, {})
        cache.put(key_for("fp-a", M2), 2, {})
        cache.put(key_for("fp-b", M1), 3, {})
        assert cache.invalidate_fingerprint("fp-a") == 2
        assert cache.entry_count == 1
        assert cache.get(key_for("fp-b", M1)).count == 3
        assert cache.bytes_used == cache.get(key_for("fp-b", M1)).nbytes

    def test_concurrent_put_get_stays_consistent(self):
        cache = ResultCache(max_bytes=4096)  # small: constant eviction
        errors = []

        def hammer(worker: int) -> None:
            try:
                for i in range(200):
                    k = key_for(f"fp-{worker}-{i % 17}")
                    cache.put(k, i, {"edges": i})
                    got = cache.get(k)
                    if got is not None and got.count % 1 != 0:
                        errors.append("corrupt entry")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert 0 <= cache.bytes_used <= cache.max_bytes
        # Byte accounting must agree with the surviving entries.
        total = sum(e.nbytes for e in cache._entries.values())
        assert total == cache.bytes_used

    def test_clear(self):
        cache = ResultCache()
        cache.put(key_for("fp-a"), 1, {})
        cache.clear()
        assert cache.entry_count == 0 and cache.bytes_used == 0


class TestPercentile:
    def test_nearest_rank(self):
        vals = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert percentile(vals, 50) == 5
        assert percentile(vals, 99) == 10
        assert percentile(vals, 0) == 1
        assert percentile(vals, 100) == 10

    def test_unsorted_input(self):
        assert percentile([5, 1, 3], 50) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0], 101)


class TestLatencyReservoir:
    def test_bounded_capacity(self):
        res = LatencyReservoir(capacity=4)
        for i in range(10):
            res.record(float(i))
        assert res.snapshot() == [6.0, 7.0, 8.0, 9.0]
        assert res.recorded_total == 10

    def test_quantiles_empty_is_zero(self):
        assert LatencyReservoir().quantiles() == {"p50_s": 0.0, "p99_s": 0.0}

    def test_quantiles(self):
        res = LatencyReservoir()
        for v in [0.1, 0.2, 0.3, 0.4]:
            res.record(v)
        q = res.quantiles()
        assert q["p50_s"] == pytest.approx(0.2)
        assert q["p99_s"] == pytest.approx(0.4)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            LatencyReservoir(capacity=0)


def make_metrics(**overrides) -> ServiceMetrics:
    base = dict(
        queue_depth=0, inflight=0, admitted=0, coalesced=0, shed=0,
        completed=0, errors=0, cancelled=0, cache_hits=0, cache_misses=0,
        cache_entries=0, cache_bytes=0, cache_evictions=0,
        resident_graphs=0, latency_p50_s=0.0, latency_p99_s=0.0,
        latency_samples=0,
    )
    base.update(overrides)
    return ServiceMetrics(**base)


class TestServiceMetrics:
    def test_ratios(self):
        m = make_metrics(admitted=10, coalesced=4, cache_hits=3, cache_misses=1)
        assert m.coalesce_ratio == pytest.approx(0.4)
        assert m.cache_hit_rate == pytest.approx(0.75)

    def test_ratios_zero_denominator(self):
        m = make_metrics()
        assert m.coalesce_ratio == 0.0
        assert m.cache_hit_rate == 0.0

    def test_as_dict_carries_derived_fields(self):
        d = make_metrics(admitted=2, coalesced=1).as_dict()
        assert d["coalesce_ratio"] == pytest.approx(0.5)
        assert "cache_hit_rate" in d
        assert d["admitted"] == 2

    def test_render_mentions_key_metrics(self):
        text = make_metrics(shed=3).render()
        assert "coalesce ratio" in text
        assert "shed (rejected)" in text
        assert "latency p99 (ms)" in text


class TestMotifQuery:
    def test_key_triple(self):
        q = MotifQuery("fp", M1, 10)
        assert q.key == ("fp", M1.canonical_key(), 10)

    def test_identical_spec_shares_key_with_catalog(self):
        # An inline spec identical to catalog M1 must coalesce with it.
        spec = "; ".join(f"n{u}->n{v}" for u, v in M1.edges)
        inline = parse_motif(spec, name="custom")
        assert MotifQuery("fp", inline, 10).key == MotifQuery("fp", M1, 10).key

    def test_different_motifs_different_keys(self):
        assert MotifQuery("fp", M1, 10).key != MotifQuery("fp", M2, 10).key

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            MotifQuery("fp", M1, -1)
        with pytest.raises(ValueError, match="positive"):
            MotifQuery("fp", M1, 10, timeout_s=0)


class TestPayload:
    def test_build_payload_coerces_ints(self):
        p = build_payload("fp", motif_by_name("M1"), 10, 3, {"edges": 2.0})
        assert p == {
            "graph": "fp",
            "motif": "M1",
            "delta": 10,
            "count": 3,
            "counters": {"edges": 2},
            "accuracy": "exact",
        }

    def test_payload_bytes_deterministic(self):
        p1 = {"b": 1, "a": 2}
        p2 = {"a": 2, "b": 1}
        assert payload_bytes(p1) == payload_bytes(p2)
        assert payload_bytes(p1) == b'{"a":2,"b":1}'


class TestPoolExecutor:
    def test_validation(self):
        from repro.service import PoolExecutor

        with pytest.raises(ValueError, match="at least one worker"):
            PoolExecutor(0)
        with pytest.raises(ValueError, match="positive"):
            PoolExecutor(1, max_pools=0)

    def test_pool_reuse_and_lru_eviction(self):
        from repro.mining.mackey import count_motifs
        from repro.service import PoolExecutor

        g1, g2 = make_graph(0), make_graph(1)
        executor = PoolExecutor(1, max_pools=1)
        try:
            (count1, _), = executor.count_batch(g1, [M1], 100, None)
            assert count1 == count_motifs(g1, M1, 100)
            pool1 = executor._pools[g1.fingerprint()]
            # Same graph again: the pool is reused, not rebuilt.
            executor.count_batch(g1, [M1], 100, None)
            assert executor._pools[g1.fingerprint()] is pool1
            # A second graph exceeds max_pools=1: g1's pool is evicted
            # and closed.
            (count2, _), = executor.count_batch(g2, [M1], 100, None)
            assert count2 == count_motifs(g2, M1, 100)
            assert list(executor._pools) == [g2.fingerprint()]
            assert pool1.closed
        finally:
            executor.close()
        assert executor._pools == {}

    def test_release_graph_closes_pool(self):
        from repro.service import PoolExecutor

        g = make_graph()
        executor = PoolExecutor(1)
        try:
            executor.count_batch(g, [M1], 100, None)
            pool = executor._pools[g.fingerprint()]
            executor.release_graph(g.fingerprint())
            assert pool.closed
            assert executor._pools == {}
            # Releasing an unknown fingerprint is a no-op.
            executor.release_graph("nope")
        finally:
            executor.close()

    def test_inline_executor_cancel_between_motifs(self, tiny_graph):
        from repro.mining.parallel import MiningCancelled
        from repro.service import InlineExecutor

        calls = iter([False, True])
        with pytest.raises(MiningCancelled):
            InlineExecutor(comine=False).count_batch(
                tiny_graph, [M1, M2], 100, lambda: next(calls)
            )

    def test_inline_executor_comine_cancel(self, tiny_graph):
        from repro.mining.parallel import MiningCancelled
        from repro.service import InlineExecutor

        with pytest.raises(MiningCancelled):
            InlineExecutor().count_batch(
                tiny_graph, [M1, M2], 100, lambda: True
            )

    def test_inline_executor_comine_matches_per_motif(self, tiny_graph):
        from repro.service import InlineExecutor

        comined = InlineExecutor().count_batch(tiny_graph, [M1, M2], 100)
        looped = InlineExecutor(comine=False).count_batch(
            tiny_graph, [M1, M2], 100
        )
        assert comined == looped
