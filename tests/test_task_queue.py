"""Tests for the hardware task queue model."""

import pytest

from repro.sim.task_queue import RootTaskQueue


class TestDequeue:
    def test_serves_roots_in_chronological_order(self):
        q = RootTaskQueue(num_edges=5)
        roots = [q.dequeue(0)[0] for _ in range(5)]
        assert roots == [0, 1, 2, 3, 4]

    def test_exhausted_queue_returns_none(self):
        q = RootTaskQueue(num_edges=1)
        assert q.dequeue(0) is not None
        assert q.dequeue(10) is None

    def test_single_port_serializes(self):
        q = RootTaskQueue(num_edges=3, dequeue_cycles=1)
        _, r1 = q.dequeue(0)
        _, r2 = q.dequeue(0)
        _, r3 = q.dequeue(0)
        assert r1 == 1 and r2 == 2 and r3 == 3
        assert q.stats.contention_cycles == 1 + 2

    def test_no_contention_when_spaced(self):
        q = RootTaskQueue(num_edges=3)
        q.dequeue(0)
        q.dequeue(100)
        assert q.stats.contention_cycles == 0

    def test_remaining(self):
        q = RootTaskQueue(num_edges=4)
        assert q.remaining == 4
        q.dequeue(0)
        assert q.remaining == 3

    def test_stats_count_dequeues(self):
        q = RootTaskQueue(num_edges=2)
        q.dequeue(0)
        q.dequeue(0)
        q.dequeue(0)
        assert q.stats.dequeues == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            RootTaskQueue(1, dequeue_cycles=0)
        with pytest.raises(ValueError):
            RootTaskQueue(1, entries=0)
        with pytest.raises(ValueError):
            RootTaskQueue(1, refill_cycles=0)


class TestRefillBound:
    def test_default_refill_never_starves(self):
        # With one entry refilled per cycle and a single-cycle dequeue
        # port, the host always stays ahead of the queue (paper config).
        q = RootTaskQueue(num_edges=100, entries=16)
        for _ in range(100):
            q.dequeue(0)
        assert q.stats.starve_cycles == 0

    def test_shallow_queue_with_slow_host_starves(self):
        q = RootTaskQueue(num_edges=3, entries=1, refill_cycles=10)
        root0, r0 = q.dequeue(0)
        root1, r1 = q.dequeue(r0)
        root2, r2 = q.dequeue(r1)
        assert (root0, root1, root2) == (0, 1, 2)
        # Entry 1 only arrives at cycle 10, entry 2 at cycle 20.
        assert r1 == 11
        assert r2 == 21
        assert q.stats.starve_cycles == (10 - 1) + (20 - 11)

    def test_deep_queue_absorbs_slow_host(self):
        q = RootTaskQueue(num_edges=3, entries=16, refill_cycles=10)
        q.dequeue(0)
        q.dequeue(0)
        q.dequeue(0)
        assert q.stats.starve_cycles == 0
