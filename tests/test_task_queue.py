"""Tests for the hardware task queue model."""

import pytest

from repro.sim.task_queue import RootTaskQueue


class TestDequeue:
    def test_serves_roots_in_chronological_order(self):
        q = RootTaskQueue(num_edges=5)
        roots = [q.dequeue(0)[0] for _ in range(5)]
        assert roots == [0, 1, 2, 3, 4]

    def test_exhausted_queue_returns_none(self):
        q = RootTaskQueue(num_edges=1)
        assert q.dequeue(0) is not None
        assert q.dequeue(10) is None

    def test_single_port_serializes(self):
        q = RootTaskQueue(num_edges=3, dequeue_cycles=1)
        _, r1 = q.dequeue(0)
        _, r2 = q.dequeue(0)
        _, r3 = q.dequeue(0)
        assert r1 == 1 and r2 == 2 and r3 == 3
        assert q.stats.contention_cycles == 1 + 2

    def test_no_contention_when_spaced(self):
        q = RootTaskQueue(num_edges=3)
        q.dequeue(0)
        q.dequeue(100)
        assert q.stats.contention_cycles == 0

    def test_remaining(self):
        q = RootTaskQueue(num_edges=4)
        assert q.remaining == 4
        q.dequeue(0)
        assert q.remaining == 3

    def test_stats_count_dequeues(self):
        q = RootTaskQueue(num_edges=2)
        q.dequeue(0)
        q.dequeue(0)
        q.dequeue(0)
        assert q.stats.dequeues == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            RootTaskQueue(1, dequeue_cycles=0)
        with pytest.raises(ValueError):
            RootTaskQueue(1, entries=0)
