"""Standing subscriptions: window tracking, threshold arming, and the
bounded at-least-once outbox."""

import threading

import pytest

from repro.graph.generators import make_dataset
from repro.live.ingest import LiveGraph
from repro.live.outbox import Outbox
from repro.live.subscriptions import (
    THRESHOLD,
    UPDATE,
    Subscription,
    WindowTracker,
)
from repro.motifs.catalog import motif_by_name


class TestWindowTracker:
    def test_counts_only_completions_inside_window(self):
        w = WindowTracker(delta=10)
        w.record(5, 2)
        w.record(12, 1)
        w.expire(14)  # horizon 4: both survive
        assert w.window_count == 3
        w.expire(20)  # horizon 10: t=5 falls out
        assert w.window_count == 1

    def test_zero_completions_not_recorded(self):
        w = WindowTracker(delta=10)
        w.record(5, 0)
        assert w.window_count == 0

    def test_crossed_is_edge_triggered(self):
        w = WindowTracker(delta=100)
        w.record(1, 3)
        assert w.crossed(2)          # 3 > 2, armed -> fires
        w.record(2, 1)
        assert not w.crossed(2)      # still above, disarmed
        w.expire(200)                # window empties -> re-arms at <= k
        assert not w.crossed(2)
        w.record(201, 5)
        assert w.crossed(2)          # fires again after re-arm


class TestSubscription:
    def make(self, **kw):
        kw.setdefault("sub_id", "sub-1")
        kw.setdefault("graph_name", "g")
        kw.setdefault("motif", motif_by_name("M2"))
        kw.setdefault("delta", 50)
        return Subscription(**kw)

    def test_threshold_requires_threshold_value(self):
        with pytest.raises(ValueError):
            self.make(kind=THRESHOLD)
        with pytest.raises(ValueError):
            self.make(kind=UPDATE, threshold=3)
        with pytest.raises(ValueError):
            self.make(kind="bogus")

    def test_update_kind_fires_every_evaluation(self):
        sub = self.make()
        sub.advance(0, 1, 10)
        ev = sub.evaluate(version=1, t_now=10, batch_completed=0,
                          window_edges=1)
        assert ev is not None and ev["type"] == "update"
        assert ev["version"] == 1
        queued = sub.outbox.read_after(0)
        assert [e["seq"] for e in queued] == [1]
        assert sub.status()["fires"] == 1

    def test_threshold_kind_fires_only_on_crossing(self):
        # ping-pong (a->b, b->a) completes once per returning edge.
        sub = self.make(motif=motif_by_name("ping-pong"), kind=THRESHOLD,
                        threshold=1)
        events = []
        t = 0
        for s, d in [(0, 1), (1, 0), (0, 1), (1, 0)]:
            t += 1
            done = sub.advance(s, d, t)
            ev = sub.evaluate(version=t, t_now=t, batch_completed=done,
                              window_edges=t)
            if ev is not None:
                events.append(ev)
        # Window count goes 0,1,1,2(+1 new pair): crosses 1 exactly once.
        assert [e["type"] for e in events] == ["alert"]
        assert events[0]["threshold"] == 1
        assert events[0]["window_count"] > 1

    def test_counts_match_live_graph_feed(self):
        g = make_dataset("email-eu", scale=0.03, seed=7)
        delta = max(1, g.time_span // 20)
        live = LiveGraph("g", delta)
        sub = self.make(delta=delta)
        live.attach(sub)
        edges = list(zip(g.src.tolist(), g.dst.tolist(), g.ts.tolist()))
        live.append_batch(edges, seq=0, flush=True)
        from repro.mining.mackey import MackeyMiner
        serial = MackeyMiner(g, sub.motif, delta).mine()
        assert sub.count == serial.count

    def test_status_shape(self):
        sub = self.make(kind=THRESHOLD, threshold=4)
        st = sub.status()
        assert st["kind"] == "threshold" and st["threshold"] == 4
        assert "armed" in st and "outbox" in st and st["count"] == 0


class TestOutbox:
    def test_append_stamps_monotonic_seq_without_mutating_input(self):
        box = Outbox("sub-1", capacity=4)
        ev = {"type": "update"}
        assert box.append(ev) == 1
        assert box.append({"type": "update"}) == 2
        assert "seq" not in ev  # caller's dict untouched
        assert [e["seq"] for e in box.read_after(0)] == [1, 2]

    def test_reads_do_not_consume(self):
        box = Outbox("sub-1", capacity=4)
        box.append({"type": "update"})
        assert len(box.read_after(0)) == 1
        assert len(box.read_after(0)) == 1  # at-least-once: still there

    def test_drop_oldest_and_gap_synthesis(self):
        drops, gaps = [], []
        box = Outbox("sub-1", capacity=3, on_drop=lambda n: drops.append(n),
                     on_gap=lambda n: gaps.append(n))
        for i in range(5):
            box.append({"type": "update", "i": i})
        assert box.retained == 3 and sum(drops) == 2
        events = box.read_after(0)
        gap, rest = events[0], events[1:]
        assert gap["type"] == "gap"
        assert gap["from_seq"] == 1 and gap["to_seq"] == 2
        assert gap["dropped"] == 2
        assert [e["seq"] for e in rest] == [3, 4, 5]
        assert gaps == [1]
        # A reader already past the drop horizon sees no gap.
        assert [e["seq"] for e in box.read_after(3)] == [4, 5]

    def test_max_events_limits_page(self):
        box = Outbox("sub-1", capacity=8)
        for i in range(6):
            box.append({"i": i})
        page = box.read_after(0, max_events=2)
        assert [e["seq"] for e in page] == [1, 2]
        rest = box.read_after(page[-1]["seq"])
        assert [e["seq"] for e in rest] == [3, 4, 5, 6]

    def test_wait_events_wakes_on_append(self):
        box = Outbox("sub-1", capacity=4)
        got = []

        def reader():
            got.extend(box.wait_events(after=0, timeout_s=5.0))

        t = threading.Thread(target=reader)
        t.start()
        box.append({"type": "update"})
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert [e["seq"] for e in got] == [1]

    def test_wait_events_times_out_empty(self):
        box = Outbox("sub-1", capacity=4)
        assert box.wait_events(after=0, timeout_s=0.05) == []

    def test_close_wakes_waiters_and_blocks_appends(self):
        box = Outbox("sub-1", capacity=4)
        results = []

        def reader():
            results.append(box.wait_events(after=0, timeout_s=10.0))

        t = threading.Thread(target=reader)
        t.start()
        box.close()
        t.join(timeout=5.0)
        assert not t.is_alive() and results == [[]]
        with pytest.raises(RuntimeError):
            box.append({"type": "update"})

    def test_delivery_counter_and_lag_hook(self):
        lags = []
        box = Outbox("sub-1", capacity=4,
                     on_deliver=lambda n, lag: lags.append(lag))
        box.append({"type": "update"})
        box.read_after(0)
        box.read_after(0)
        stats = box.stats()
        assert stats["delivered"] == 2
        assert len(lags) == 2 and all(lag >= 0 for lag in lags)
