"""Tests for table rendering and numeric helpers."""

import math

import pytest

from repro.analysis.reporting import (
    format_markdown,
    format_rate,
    format_table,
    geomean,
)


class TestGeomean:
    def test_basic(self):
        assert geomean([1, 100]) == pytest.approx(10.0)

    def test_single(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            geomean([1.0, 0.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            geomean([2.0, -3.0])

    def test_nan_rejected(self):
        # NaN slips through `v <= 0` comparisons; it must not silently
        # poison the mean.
        with pytest.raises(ValueError, match="NaN"):
            geomean([1.0, float("nan")])

    def test_infinity_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            geomean([1.0, math.inf])


class TestFormatRate:
    def test_plain(self):
        assert format_rate(12.34, "edges/s") == "12.3 edges/s"

    def test_kilo(self):
        assert format_rate(12_345, "edges/s") == "12.3k edges/s"

    def test_mega(self):
        assert format_rate(2_500_000, "q/s") == "2.50M q/s"

    def test_zero(self):
        assert format_rate(0.0, "edges/s") == "0.0 edges/s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            format_rate(-1.0, "edges/s")

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            format_rate(float("nan"), "edges/s")

    def test_infinity_rejected(self):
        # A zero-elapsed timer upstream must fail loudly, not render
        # "inf edges/s".
        with pytest.raises(ValueError, match="finite"):
            format_rate(math.inf, "edges/s")


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [["xxx", 1], ["y", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # all lines equal width

    def test_numeric_formatting(self):
        out = format_table(["v"], [[1234567], [0.0001], [3.14159], [True]])
        assert "1,234,567" in out
        assert "0.0001" in out
        assert "3.14" in out
        assert "True" in out

    def test_zero(self):
        assert "0" in format_table(["v"], [[0.0]])


class TestMarkdown:
    def test_structure(self):
        out = format_markdown(["a", "b"], [["1", "2"]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"
