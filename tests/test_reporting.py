"""Tests for table rendering and numeric helpers."""

import pytest

from repro.analysis.reporting import format_markdown, format_table, geomean


class TestGeomean:
    def test_basic(self):
        assert geomean([1, 100]) == pytest.approx(10.0)

    def test_single(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [["xxx", 1], ["y", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # all lines equal width

    def test_numeric_formatting(self):
        out = format_table(["v"], [[1234567], [0.0001], [3.14159], [True]])
        assert "1,234,567" in out
        assert "0.0001" in out
        assert "3.14" in out
        assert "True" in out

    def test_zero(self):
        assert "0" in format_table(["v"], [[0.0]])


class TestMarkdown:
    def test_structure(self):
        out = format_markdown(["a", "b"], [["1", "2"]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"
