"""Scheduler and end-to-end service behaviour.

The load-shaped acceptance test lives in ``test_service_load.py``; this
module pins the scheduler's individual guarantees deterministically:

- **differential parity** — every served payload (mined, coalesced or
  cached) is byte-identical to a direct miner run, across the whole
  motif catalog;
- **single-flight coalescing** — identical in-flight queries execute
  once (forced deterministically with the ``pause``/``resume`` hook);
- **batching** — compatible queries reach the backend as one call;
- **deadlines** — expiry cancels queued work without mining it and
  stops running batches at the next cancellation poll;
- **failure isolation** — one backend crash is absorbed by the single
  batch retry; persistent crashes yield ``"error"`` results and the
  scheduler keeps serving.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.graph.temporal_graph import TemporalGraph
from repro.mining.mackey import MackeyMiner
from repro.mining.parallel import MiningCancelled
from repro.motifs.catalog import EVALUATION_MOTIFS, EXTRA_MOTIFS, M1, M2
from repro.service import (
    GraphRegistry,
    InlineExecutor,
    MotifService,
    QueryRejected,
    QueryScheduler,
    ResultCache,
    ServiceClosed,
    build_payload,
    payload_bytes,
)

DELTA = 30


@pytest.fixture
def graph(burst_graph) -> TemporalGraph:
    return burst_graph


def direct_payload(graph: TemporalGraph, motif, delta: int) -> bytes:
    """The ground truth: a fresh serial miner run, canonically encoded."""
    result = MackeyMiner(graph, motif, delta).mine()
    return payload_bytes(
        build_payload(
            graph.fingerprint(), motif, delta, result.count,
            result.counters.as_dict(),
        )
    )


class RecordingExecutor(InlineExecutor):
    """Inline backend that records every batch it executes."""

    def __init__(self) -> None:
        self.calls = []

    def count_batch(self, graph, motifs, delta, cancel_check=None):
        self.calls.append((graph.fingerprint(), [m.name for m in motifs], delta))
        return super().count_batch(graph, motifs, delta, cancel_check)


class CrashingExecutor(InlineExecutor):
    """Fails the first ``crashes`` batches, then behaves normally."""

    def __init__(self, crashes: int = 1) -> None:
        self.remaining = crashes

    def count_batch(self, graph, motifs, delta, cancel_check=None):
        if self.remaining > 0:
            self.remaining -= 1
            raise RuntimeError("worker crashed mid-query")
        return super().count_batch(graph, motifs, delta, cancel_check)


class BlockingExecutor(InlineExecutor):
    """Blocks in the cancellation poll until ``cancel_check`` fires."""

    def __init__(self) -> None:
        self.entered = threading.Event()

    def count_batch(self, graph, motifs, delta, cancel_check=None):
        self.entered.set()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if cancel_check is not None and cancel_check():
                raise MiningCancelled("cancelled at poll")
            time.sleep(0.005)
        raise AssertionError("cancel_check never fired")


def make_scheduler(executor, **kwargs):
    registry = GraphRegistry()
    scheduler = QueryScheduler(registry, ResultCache(), executor, **kwargs)
    return registry, scheduler


class TestDifferentialParity:
    def test_served_payloads_match_direct_miner_across_catalog(self, graph):
        """Acceptance: served bytes == direct-miner bytes, whole catalog."""
        with MotifService() as svc:
            for motif in EVALUATION_MOTIFS + EXTRA_MOTIFS:
                expected = direct_payload(graph, motif, DELTA)
                mined = svc.query(graph, motif, DELTA)
                assert mined.ok and mined.source == "mined"
                assert payload_bytes(mined.payload) == expected, motif.name
                cached = svc.query(graph, motif, DELTA)
                assert cached.ok and cached.source == "cache"
                assert payload_bytes(cached.payload) == expected, motif.name

    def test_coalesced_payloads_match_direct_miner(self, graph):
        with MotifService() as svc:
            svc.scheduler.pause()
            pending = [svc.submit(graph, M1, DELTA) for _ in range(5)]
            svc.scheduler.resume()
            expected = direct_payload(graph, M1, DELTA)
            results = [p.result() for p in pending]
            assert all(r.ok for r in results)
            assert {r.source for r in results} == {"mined", "coalesced"}
            assert sum(r.source == "coalesced" for r in results) == 4
            for r in results:
                assert payload_bytes(r.payload) == expected

    def test_pool_backed_parity(self, graph):
        with MotifService(num_workers=2) as svc:
            for motif in (M1, M2):
                r = svc.query(graph, motif, DELTA)
                assert r.ok
                assert payload_bytes(r.payload) == direct_payload(
                    graph, motif, DELTA
                )


class TestCoalescing:
    def test_identical_inflight_queries_execute_once(self, graph):
        executor = RecordingExecutor()
        registry, scheduler = make_scheduler(executor)
        registry.register(graph)
        from repro.service.query import MotifQuery

        scheduler.pause()
        q = MotifQuery(graph.fingerprint(), M1, DELTA)
        pending = [scheduler.submit(q) for _ in range(4)]
        assert scheduler.queue_depth == 1  # one entry, four waiters
        scheduler.resume()
        results = [p.result() for p in pending]
        scheduler.close()
        assert all(r.ok for r in results)
        assert len(executor.calls) == 1
        m = scheduler.metrics()
        assert m.admitted == 4 and m.coalesced == 3
        assert m.coalesce_ratio == pytest.approx(0.75)

    def test_different_deltas_do_not_coalesce(self, graph):
        executor = RecordingExecutor()
        registry, scheduler = make_scheduler(executor)
        registry.register(graph)
        from repro.service.query import MotifQuery

        scheduler.pause()
        p1 = scheduler.submit(MotifQuery(graph.fingerprint(), M1, 10))
        p2 = scheduler.submit(MotifQuery(graph.fingerprint(), M1, 20))
        scheduler.resume()
        assert p1.result().payload["count"] is not None
        assert p2.result().payload["delta"] == 20
        scheduler.close()
        assert scheduler.coalesced == 0


class TestBatching:
    def test_same_graph_same_delta_batches_into_one_call(self, graph):
        executor = RecordingExecutor()
        registry, scheduler = make_scheduler(executor, max_batch=8)
        registry.register(graph)
        from repro.service.query import MotifQuery

        scheduler.pause()
        pending = [
            scheduler.submit(MotifQuery(graph.fingerprint(), m, DELTA))
            for m in EVALUATION_MOTIFS
        ]
        scheduler.resume()
        results = [p.result() for p in pending]
        scheduler.close()
        assert all(r.ok for r in results)
        assert len(executor.calls) == 1
        assert executor.calls[0][1] == [m.name for m in EVALUATION_MOTIFS]
        # Each waiter got its own motif's answer.
        for motif, r in zip(EVALUATION_MOTIFS, results):
            assert payload_bytes(r.payload) == direct_payload(
                graph, motif, DELTA
            )


class TestDeadlines:
    def test_expired_queued_work_is_never_mined(self, graph):
        executor = RecordingExecutor()
        registry, scheduler = make_scheduler(executor)
        registry.register(graph)
        from repro.service.query import MotifQuery

        scheduler.pause()
        pending = scheduler.submit(
            MotifQuery(graph.fingerprint(), M1, DELTA, timeout_s=0.02)
        )
        result = pending.result()  # blocks past the deadline, expires
        assert result.status == "deadline_exceeded"
        scheduler.resume()
        time.sleep(0.1)  # let the dispatcher drain the dead entry
        scheduler.close()
        assert executor.calls == []  # cancelled *before* mining
        assert scheduler.cancelled >= 1

    def test_running_batch_cancelled_at_poll(self, graph):
        executor = BlockingExecutor()
        registry, scheduler = make_scheduler(executor)
        registry.register(graph)
        from repro.service.query import MotifQuery

        pending = scheduler.submit(
            MotifQuery(graph.fingerprint(), M1, DELTA, timeout_s=0.05)
        )
        assert executor.entered.wait(2.0)  # batch is running
        result = pending.result()
        assert result.status == "deadline_exceeded"
        scheduler.close()
        assert scheduler.cancelled >= 1
        assert scheduler.errors == 0

    def test_no_deadline_waiter_keeps_batch_alive(self, graph):
        with MotifService() as svc:
            svc.scheduler.pause()
            timed = svc.submit(graph, M1, DELTA, timeout_s=0.01)
            forever = svc.submit(graph, M1, DELTA)  # coalesces, no deadline
            assert timed.result().status == "deadline_exceeded"
            svc.scheduler.resume()
            result = forever.result()
            assert result.ok
            assert payload_bytes(result.payload) == direct_payload(
                graph, M1, DELTA
            )


class TestFailureIsolation:
    def test_transient_backend_crash_is_retried_transparently(self, graph):
        # One crash is absorbed by the scheduler's single batch retry:
        # the client still gets a correct answer, and the retry is
        # visible in the resilience counters.
        executor = CrashingExecutor(crashes=1)
        registry, scheduler = make_scheduler(executor)
        registry.register(graph)
        from repro.service.query import MotifQuery

        result = scheduler.submit(MotifQuery(graph.fingerprint(), M1, DELTA)).result()
        scheduler.close()
        assert result.ok
        assert payload_bytes(result.payload) == direct_payload(graph, M1, DELTA)
        assert scheduler.counters.get("batch_retries") == 1
        assert scheduler.errors == 0

    def test_backend_crash_yields_error_and_scheduler_survives(self, graph):
        # Two consecutive crashes exhaust the single retry: the group
        # errors, but the scheduler keeps serving.
        executor = CrashingExecutor(crashes=2)
        registry, scheduler = make_scheduler(executor)
        registry.register(graph)
        from repro.service.query import MotifQuery

        bad = scheduler.submit(MotifQuery(graph.fingerprint(), M1, DELTA))
        result = bad.result()
        assert result.status == "error"
        assert "worker crashed mid-query" in result.error
        assert "RuntimeError" in result.error
        # The scheduler is not wedged: the next query mines normally.
        good = scheduler.submit(MotifQuery(graph.fingerprint(), M1, DELTA))
        ok = good.result()
        scheduler.close()
        assert ok.ok
        assert payload_bytes(ok.payload) == direct_payload(graph, M1, DELTA)
        assert scheduler.errors == 1
        assert scheduler.counters.get("batch_retries") == 1

    def test_unknown_graph_is_an_error_result(self, graph):
        registry, scheduler = make_scheduler(InlineExecutor())
        registry.register(graph)  # so the fingerprint below is truly absent
        from repro.service.query import MotifQuery

        pending = scheduler.submit(MotifQuery("deadbeef" * 4, M1, DELTA))
        result = pending.result()
        scheduler.close()
        assert result.status == "error"
        assert "unknown graph" in result.error

    def test_crash_does_not_poison_cache(self, graph):
        executor = CrashingExecutor(crashes=2)
        registry, scheduler = make_scheduler(executor)
        registry.register(graph)
        from repro.service.query import MotifQuery

        q = MotifQuery(graph.fingerprint(), M1, DELTA)
        assert scheduler.submit(q).result().status == "error"
        retry = scheduler.submit(q).result()
        scheduler.close()
        assert retry.ok and retry.source == "mined"  # not a cache hit


class TestOverload:
    def test_full_queue_sheds_with_retry_hint(self, graph):
        registry, scheduler = make_scheduler(InlineExecutor(), max_queue=2)
        registry.register(graph)
        from repro.service.query import MotifQuery

        scheduler.pause()
        fp = graph.fingerprint()
        scheduler.submit(MotifQuery(fp, M1, 10))
        scheduler.submit(MotifQuery(fp, M1, 20))
        with pytest.raises(QueryRejected) as exc_info:
            scheduler.submit(MotifQuery(fp, M1, 30))
        assert exc_info.value.retry_after_s > 0
        assert "queue full" in str(exc_info.value)
        # Identical to an in-flight key: coalesces instead of shedding.
        coalesced = scheduler.submit(MotifQuery(fp, M1, 10))
        scheduler.resume()
        assert coalesced.result().ok
        scheduler.close()
        assert scheduler.shed == 1


class TestLifecycle:
    def test_submit_after_close_raises(self, graph):
        registry, scheduler = make_scheduler(InlineExecutor())
        registry.register(graph)
        scheduler.close()
        from repro.service.query import MotifQuery

        with pytest.raises(ServiceClosed):
            scheduler.submit(MotifQuery(graph.fingerprint(), M1, DELTA))

    def test_close_drains_queued_entries_as_closed(self, graph):
        registry, scheduler = make_scheduler(InlineExecutor())
        registry.register(graph)
        from repro.service.query import MotifQuery

        scheduler.pause()
        pending = scheduler.submit(MotifQuery(graph.fingerprint(), M1, DELTA))
        scheduler.close()
        result = pending.result()
        assert result.status == "closed"
        assert "closed" in result.error

    def test_close_is_idempotent(self):
        _, scheduler = make_scheduler(InlineExecutor())
        scheduler.close()
        scheduler.close()


class TestServiceFrontEnd:
    def test_motif_by_name_and_graph_by_name(self, graph):
        with MotifService() as svc:
            fp = svc.register_graph(graph, name="burst")
            r = svc.query("burst", "M1", DELTA)
            assert r.ok
            assert r.payload["graph"] == fp
            assert r.payload["motif"] == "M1"

    def test_transient_graph_rides_idle_lru(self, graph):
        with MotifService(max_idle_graphs=2) as svc:
            r = svc.query(graph, M1, DELTA)  # never registered explicitly
            assert r.ok
            assert svc.registry.refcount(graph.fingerprint()) == 0
            assert svc.registry.idle_count == 1

    def test_registry_eviction_invalidates_cache_and_pool(self):
        with MotifService(max_idle_graphs=1) as svc:
            g1 = TemporalGraph([(0, 1, 1), (1, 2, 2), (2, 0, 3)])
            g2 = TemporalGraph([(0, 1, 4), (1, 2, 5), (2, 0, 6)])
            assert svc.query(g1, M1, 10).ok
            assert svc.cache.entry_count == 1
            assert svc.query(g2, M1, 10).ok  # evicts g1 from the idle LRU
            assert g1.fingerprint() not in svc.registry
            # g1's cache entries went with it: a re-query re-mines.
            again = svc.query(g1, M1, 10)
            assert again.ok and again.source == "mined"

    def test_stream_window_query_matches_direct_window_mine(self, graph):
        with MotifService() as svc:
            svc.open_stream("live", M1, DELTA)
            edges = list(zip(graph.src.tolist(), graph.dst.tolist(),
                             graph.ts.tolist()))
            svc.append_stream("live", edges)
            counts = svc.stream_counts("live")
            assert counts["stream"] == "live"
            r = svc.stream_window_query("live", M2)
            assert r.ok
            # Ground truth: mine M2 on the stream's current window.
            window = svc._stream("live").counter.window_snapshot()
            assert payload_bytes(r.payload) == direct_payload(
                window, M2, DELTA
            )
            # Unchanged window, same question: served from cache.
            again = svc.stream_window_query("live", M2)
            assert again.ok and again.source == "cache"
            svc.close_stream("live")
            assert svc.streams() == []
