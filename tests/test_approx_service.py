"""Tiered approximate serving through the service layer.

Contract under test — *every answer is labelled, exact is always
preferred, degradation never serves unlabelled bytes*:

- ``mode="approx"`` queries run adaptive sampling through the normal
  admit → coalesce → batch path and serve payloads carrying
  ``{estimate, stderr, ci, confidence, achieved_eps, accuracy}``;
- the cache tiers accuracy: exact entries are never downgraded,
  approximate entries are replaced by exact (a *refinement*) or by a
  tighter-ε estimate, and an exact hit satisfies an approx query;
- the background refiner upgrades popular approx entries to exact
  during idle capacity;
- the degradation ladder (open breaker, full queue, missed deadline)
  serves the best available labelled estimate where the service would
  otherwise 504 / 429;
- the new counters flow into ``/metrics``.
"""

from __future__ import annotations

import json
import random
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.approx.engine import estimate_inline
from repro.approx.estimate import APPROX, EXACT, ApproxSpec, build_approx_payload
from repro.approx.refiner import CacheRefiner
from repro.mining.mackey import MackeyMiner
from repro.motifs.catalog import M1, M2
from repro.resilience import OPEN, FaultPlan
from repro.service import (
    MotifService,
    PoolExecutor,
    ResultCache,
    build_payload,
    payload_bytes,
    make_server,
)
from repro.service.query import MotifQuery, QueryRejected
from tests.conftest import random_temporal_graph

DELTA = 50
#: Cheap sampling contract used throughout: wide error budget, small cap.
SPEC = ApproxSpec(max_error=0.5, seed=1, base_samples=16, max_samples=64)


@pytest.fixture(scope="module")
def graph():
    rng = random.Random(31)
    return random_temporal_graph(rng, 30, 400, time_range=400)


@pytest.fixture()
def service(graph):
    with MotifService() as svc:
        svc.register_graph(graph, name="g")
        yield svc


APPROX_FIELDS = {
    "estimate", "stderr", "ci", "confidence", "achieved_eps",
    "num_samples", "seed", "truncated", "accuracy",
}


def assert_labelled_approx(payload):
    assert APPROX_FIELDS <= set(payload)
    assert payload["accuracy"].startswith("approx(eps=")
    lo, hi = payload["ci"]
    assert lo <= payload["estimate"] <= hi


class TestQueryValidation:
    def test_mode_validation(self):
        with pytest.raises(ValueError, match="unknown mode"):
            MotifQuery("fp", M1, 10, mode="fuzzy")
        with pytest.raises(ValueError, match="cannot carry an ApproxSpec"):
            MotifQuery("fp", M1, 10, mode=EXACT, approx=ApproxSpec())

    def test_approx_mode_defaults_spec(self):
        q = MotifQuery("fp", M1, 10, mode=APPROX)
        assert q.approx == ApproxSpec()

    def test_key_is_mode_independent(self):
        # Both modes fill the same cache slot.
        exact = MotifQuery("fp", M1, 10)
        approx = MotifQuery("fp", M1, 10, mode=APPROX)
        assert exact.key == approx.key


class TestApproxQueryMode:
    def test_approx_answer_is_labelled_and_deterministic(self, graph, service):
        r = service.query("g", M1, DELTA, approx=SPEC)
        assert r.ok and r.source == "mined"
        assert_labelled_approx(r.payload)
        # Byte parity with the inline engine (and hence the CLI): the
        # service's adaptive path walks the identical sample prefix.
        est = estimate_inline(graph, M1, DELTA, SPEC)
        expected = build_approx_payload(graph.fingerprint(), M1, DELTA, est)
        assert payload_bytes(r.payload) == payload_bytes(expected)

    def test_approx_result_is_cached(self, service):
        first = service.query("g", M1, DELTA, approx=SPEC)
        again = service.query("g", M1, DELTA, approx=SPEC)
        assert again.source == "cache"
        assert payload_bytes(again.payload) == payload_bytes(first.payload)

    def test_exact_query_never_accepts_approx_entry(self, graph, service):
        service.query("g", M1, DELTA, approx=SPEC)
        r = service.query("g", M1, DELTA)
        assert r.source == "mined"
        assert r.payload["accuracy"] == EXACT
        expected = MackeyMiner(graph, M1, DELTA).mine()
        assert r.payload["count"] == expected.count

    def test_exact_entry_satisfies_approx_query(self, service):
        service.query("g", M1, DELTA)  # exact, cached
        r = service.query("g", M1, DELTA, approx=SPEC)
        assert r.source == "cache"
        assert r.payload["accuracy"] == EXACT

    def test_tighter_request_remines(self, service):
        service.query("g", M1, DELTA, approx=SPEC)
        eps = service.cache.peek(
            MotifQuery(service.graphs()["g"], M1, DELTA).key
        ).achieved_eps
        tighter = ApproxSpec(
            max_error=eps / 4, seed=1, base_samples=16, max_samples=4096
        )
        r = service.query("g", M1, DELTA, approx=tighter)
        assert r.source == "mined"
        assert r.payload["achieved_eps"] <= eps / 4

    def test_exact_and_approx_do_not_coalesce(self, graph, service):
        service.scheduler.pause()
        try:
            exact = service.submit("g", M2, DELTA)
            approx = service.submit("g", M2, DELTA, approx=SPEC)
            assert service.scheduler.queue_depth == 2
            assert service.scheduler.coalesced == 0
        finally:
            service.scheduler.resume()
        assert exact.result().payload["accuracy"] == EXACT
        assert_labelled_approx(approx.result().payload)

    def test_identical_approx_queries_coalesce(self, service):
        service.scheduler.pause()
        try:
            a = service.submit("g", M2, DELTA, approx=SPEC)
            b = service.submit("g", M2, DELTA, approx=SPEC)
            assert service.scheduler.queue_depth == 1
            assert service.scheduler.coalesced == 1
        finally:
            service.scheduler.resume()
        assert payload_bytes(a.result().payload) == payload_bytes(
            b.result().payload
        )


class TestCacheTiers:
    def key(self):
        return ("fp", (), 10)

    def test_exact_never_downgraded(self):
        cache = ResultCache()
        cache.put(self.key(), 5, {})
        cache.put(
            self.key(), 6, {}, accuracy="approx(eps=0.01,alpha=0.05)",
            approx={"achieved_eps": 0.01, "confidence": 0.95},
        )
        entry = cache.peek(self.key())
        assert entry.is_exact and entry.count == 5

    def test_tighter_approx_replaces_looser(self):
        cache = ResultCache()
        loose = {"achieved_eps": 0.2, "confidence": 0.95}
        tight = {"achieved_eps": 0.05, "confidence": 0.95}
        cache.put(self.key(), 5, {}, accuracy="approx(a)", approx=loose)
        cache.put(self.key(), 6, {}, accuracy="approx(b)", approx=tight)
        assert cache.peek(self.key()).achieved_eps == 0.05
        # The looser estimate never displaces the tighter one.
        cache.put(self.key(), 7, {}, accuracy="approx(a)", approx=loose)
        assert cache.peek(self.key()).achieved_eps == 0.05

    def test_exact_upgrade_counts_as_refinement(self):
        cache = ResultCache()
        cache.put(
            self.key(), 5, {}, accuracy="approx(a)",
            approx={"achieved_eps": 0.2, "confidence": 0.95},
        )
        assert cache.stats()["approx_entries"] == 1
        cache.put(self.key(), 6, {})
        stats = cache.stats()
        assert stats["refinements"] == 1
        assert stats["approx_entries"] == 0
        assert cache.peek(self.key()).is_exact

    def test_exact_get_misses_approx_entry(self):
        cache = ResultCache()
        cache.put(
            self.key(), 5, {}, accuracy="approx(a)",
            approx={"achieved_eps": 0.2, "confidence": 0.95},
        )
        assert cache.get(self.key()) is None
        assert cache.get(self.key(), accept_approx=True) is not None
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        # The miss must not evict the entry.
        assert stats["entries"] == 1

    def test_peek_does_not_touch_accounting(self):
        cache = ResultCache()
        cache.put(self.key(), 5, {})
        before = cache.stats()
        assert cache.peek(self.key()) is not None
        assert cache.peek(("other", (), 1)) is None
        after = cache.stats()
        assert (after["hits"], after["misses"]) == (
            before["hits"], before["misses"]
        )

    def test_popular_approx_orders_by_hits(self):
        cache = ResultCache()
        a, b = ("fp", ("a",), 1), ("fp", ("b",), 1)
        meta = {"achieved_eps": 0.2, "confidence": 0.95}
        cache.put(a, 1, {}, accuracy="approx(x)", approx=meta)
        cache.put(b, 2, {}, accuracy="approx(x)", approx=meta)
        for _ in range(3):
            cache.get(b, accept_approx=True)
        cache.get(a, accept_approx=True)
        ranked = cache.popular_approx()
        assert ranked[0][0] == b and ranked[0][1] == 3
        assert ranked[1][0] == a
        # Exact entries never appear.
        cache.put(b, 2, {})
        assert [k for k, _ in cache.popular_approx()] == [a]


class TestRefiner:
    def test_refine_once_upgrades_popular_entry(self, graph, service):
        service.query("g", M1, DELTA, approx=SPEC)
        refiner = CacheRefiner(service.scheduler)
        assert refiner.refine_once()
        assert refiner.refined == 1
        key = MotifQuery(graph.fingerprint(), M1, DELTA).key
        entry = service.cache.peek(key)
        assert entry.is_exact
        expected = MackeyMiner(graph, M1, DELTA).mine()
        assert entry.count == expected.count
        assert service.metrics().refined_entries == 1
        # A later approx query now serves the exact count from cache.
        r = service.query("g", M1, DELTA, approx=SPEC)
        assert r.source == "cache" and r.payload["accuracy"] == EXACT

    def test_refine_once_noop_without_approx_entries(self, service):
        service.query("g", M1, DELTA)  # exact only
        refiner = CacheRefiner(service.scheduler)
        assert not refiner.refine_once()
        assert refiner.refined == 0

    def test_background_refiner_thread(self, graph):
        with MotifService(refiner=True, refiner_interval_s=0.01) as svc:
            assert svc.refiner is not None
            svc.register_graph(graph, name="g")
            svc.query("g", M2, DELTA, approx=SPEC)
            key = MotifQuery(graph.fingerprint(), M2, DELTA).key
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                entry = svc.cache.peek(key)
                if entry is not None and entry.is_exact:
                    break
                time.sleep(0.02)
            entry = svc.cache.peek(key)
            assert entry is not None and entry.is_exact
            assert svc.metrics().refined_entries >= 1

    def test_interval_validation(self, service):
        with pytest.raises(ValueError, match="interval_s"):
            CacheRefiner(service.scheduler, interval_s=0)


class TestDegradedServing:
    def test_open_breaker_still_serves_labelled_estimate(self, graph):
        executor = PoolExecutor(2, breaker_failures=1, breaker_cooldown_s=60.0)
        plan = FaultPlan.raise_at("executor.batch", [1])
        fp = graph.fingerprint()
        with plan.installed():
            with MotifService(executor=executor, cache_bytes=0) as svc:
                svc.register_graph(graph, name="g")
                r = svc.query("g", M1, DELTA, approx=SPEC)  # trips the breaker
                assert r.ok
                assert_labelled_approx(r.payload)
                assert executor.breaker_states()[fp] == OPEN
                # While open, sampling runs inline — still labelled, and
                # byte-identical to the pooled path by construction.
                r2 = svc.query("g", M2, DELTA, approx=SPEC)
                assert r2.ok
                assert_labelled_approx(r2.payload)
                est = estimate_inline(graph, M2, DELTA, SPEC)
                assert payload_bytes(r2.payload) == payload_bytes(
                    build_approx_payload(fp, M2, DELTA, est)
                )
                m = svc.metrics()
                assert m.degraded_queries >= 1
                assert m.backend_failures == 1

    def test_queue_full_serves_stale_labelled_entry(self, graph):
        with MotifService(max_queue=1) as svc:
            svc.register_graph(graph, name="g")
            first = svc.query("g", M1, DELTA, approx=SPEC)
            svc.scheduler.pause()
            try:
                filler = svc.submit("g", M2, DELTA)  # occupies the queue
                # A stricter contract cannot take the cached entry as a
                # hit; under overload it is served anyway — labelled.
                tighter = ApproxSpec(
                    max_error=1e-6, seed=1, base_samples=16, max_samples=64
                )
                r = svc.query("g", M1, DELTA, approx=tighter)
                assert r.ok and r.source == "degraded"
                assert payload_bytes(r.payload) == payload_bytes(
                    first.payload
                )
                m = svc.metrics()
                assert m.degraded_estimates == 1
                # With nothing cached for the key, overload still sheds.
                with pytest.raises(QueryRejected):
                    svc.submit("g", "path3", DELTA, approx=SPEC)
            finally:
                svc.scheduler.resume()
            assert filler.result().ok

    def test_deadline_serves_truncated_partial(self, graph):
        # An unreachable error target with a huge budget: the run can
        # only end by deadline.  The first rounds complete in
        # milliseconds, so the expiring waiter finds a partial estimate
        # and is served it — labelled truncated — instead of a 504.
        endless = ApproxSpec(
            max_error=1e-12, seed=1, base_samples=16, max_samples=1 << 30
        )
        with MotifService() as svc:
            svc.register_graph(graph, name="g")
            r = svc.query("g", M1, DELTA, timeout_s=0.5, approx=endless)
            assert r.ok and r.source == "degraded"
            assert_labelled_approx(r.payload)
            assert r.payload["truncated"] is True
            m = svc.metrics()
            assert m.approx_served >= 1
            assert m.degraded_estimates >= 1

    def test_deadline_with_cached_entry_serves_it(self, graph):
        # A cached entry too loose for the new contract is not a cache
        # hit at admission — but when the stricter run misses its
        # deadline before producing any round, the fallback peeks the
        # cache and serves the stale estimate, labelled.
        with MotifService() as svc:
            svc.register_graph(graph, name="g")
            loose = svc.query("g", M1, DELTA, approx=SPEC)
            svc.scheduler.pause()  # the new query can never run
            try:
                r = svc.query("g", M1, DELTA, timeout_s=0.1, approx=ApproxSpec(
                    max_error=1e-6, seed=1, base_samples=16, max_samples=64
                ))
                assert r.ok and r.source == "degraded"
                assert_labelled_approx(r.payload)
                assert payload_bytes(r.payload) == payload_bytes(loose.payload)
            finally:
                svc.scheduler.resume()

    def test_deadline_without_anything_still_504s(self, graph):
        # The old contract is preserved when the ladder is empty.
        with MotifService() as svc:
            svc.register_graph(graph, name="g")
            svc.scheduler.pause()
            try:
                r = svc.query("g", M1, DELTA, timeout_s=0.1)
                assert not r.ok and r.status == "deadline_exceeded"
            finally:
                svc.scheduler.resume()


class TestMetricsPlumbing:
    def test_approx_counters_in_snapshot_and_render(self, service):
        service.query("g", M1, DELTA, approx=SPEC)
        service.query("g", M1, DELTA, approx=SPEC)  # cache hit, still approx
        m = service.metrics()
        assert m.approx_served == 2
        assert m.approx_eps_samples == 2
        assert m.approx_eps_p50 > 0
        assert m.approx_cache_entries == 1
        rendered = service.render_metrics()
        for row in ("approx served", "refined entries", "degraded estimates",
                    "approx eps p50", "approx cache entries"):
            assert row in rendered


class TestHTTPApprox:
    @pytest.fixture()
    def served(self, graph):
        svc = MotifService()
        svc.register_graph(graph, name="g")
        server = make_server(svc, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        conn = HTTPConnection(*server.server_address, timeout=30)
        try:
            yield conn, svc
        finally:
            conn.close()
            server.shutdown()
            server.server_close()
            svc.close()
            thread.join(timeout=5)

    @staticmethod
    def post_query(conn, body):
        conn.request("POST", "/query", json.dumps(body),
                     {"Content-Type": "application/json"})
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())

    def test_mode_approx_route(self, served):
        conn, _ = served
        status, body = self.post_query(conn, {
            "graph": "g", "motif": "M1", "delta": DELTA, "mode": "approx",
            "max_error": 0.5, "seed": 1, "max_samples": 64,
        })
        assert status == 200
        assert_labelled_approx(body)

    def test_error_fields_imply_approx_mode(self, served):
        conn, _ = served
        status, body = self.post_query(conn, {
            "graph": "g", "motif": "M1", "delta": DELTA, "max_error": 0.5,
        })
        assert status == 200
        assert_labelled_approx(body)

    def test_exact_route_labelled_exact(self, served, graph):
        conn, _ = served
        status, body = self.post_query(conn, {
            "graph": "g", "motif": "M2", "delta": DELTA,
        })
        assert status == 200
        assert body["accuracy"] == "exact"
        expected = MackeyMiner(graph, M2, DELTA).mine()
        assert body["count"] == expected.count

    def test_unknown_mode_is_400(self, served):
        conn, _ = served
        status, body = self.post_query(conn, {
            "graph": "g", "motif": "M1", "delta": DELTA, "mode": "fuzzy",
        })
        assert status == 400 and "unknown mode" in body["error"]

    def test_bad_approx_params_is_400(self, served):
        conn, _ = served
        status, body = self.post_query(conn, {
            "graph": "g", "motif": "M1", "delta": DELTA, "max_error": -1,
        })
        assert status == 400 and "bad approx parameters" in body["error"]
