"""Concurrent-load acceptance test for approximate serving.

64 client threads drive the service in approx mode, first cold and then
under injected deadline pressure, and the approximate-serving contract
is asserted all at once:

- **zero unlabelled answers** — every response is either exact or
  carries the full ``{estimate, stderr, ci, accuracy}`` error-bound
  block; nothing is served without its accuracy tag;
- **the contract is honoured** — achieved ε ≤ the requested
  ``max_error`` on every answer that was not deadline-truncated;
- **determinism under concurrency** — all clients sharing a key get
  payloads byte-identical to a single-threaded inline run of the same
  ``(graph, motif, δ, seed)``;
- **deadline pressure degrades, never drops** — with timeouts far too
  tight for the requested accuracy, every client still receives a
  labelled (truncated or stale-cache) estimate instead of a 504.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.approx.engine import estimate_inline
from repro.approx.estimate import ApproxSpec, build_approx_payload
from repro.motifs.catalog import EVALUATION_MOTIFS
from repro.service import MotifService, payload_bytes

NUM_CLIENTS = 64
DELTAS = (20, 40)
SEED = 20260808

#: The served accuracy contract: wide enough to converge fast on the
#: load graph, budgeted high enough that convergence always wins.
SPEC = ApproxSpec(max_error=0.5, seed=3, base_samples=16, max_samples=4096)

APPROX_FIELDS = {
    "estimate", "stderr", "ci", "confidence", "achieved_eps",
    "num_samples", "seed", "truncated", "accuracy",
}


def assert_labelled(payload):
    """Every served answer must carry its accuracy tag — the acceptance
    bar: exact, or the full error-bound block."""
    assert "accuracy" in payload, sorted(payload)
    if payload["accuracy"] == "exact":
        return
    assert payload["accuracy"].startswith("approx(eps=")
    assert APPROX_FIELDS <= set(payload), sorted(payload)


@pytest.fixture(scope="module")
def load_graph():
    rng = random.Random(7)
    edges = [
        (rng.randrange(12), rng.randrange(12), rng.randrange(200))
        for _ in range(60)
    ]
    edges = [(s, d if d != s else (d + 1) % 12, t) for s, d, t in edges]
    from repro.graph.temporal_graph import TemporalGraph

    return TemporalGraph(edges, num_nodes=12)


@pytest.fixture(scope="module")
def expected_bytes(load_graph):
    """Ground truth: the inline engine's labelled payload per key."""
    out = {}
    for motif in EVALUATION_MOTIFS:
        for delta in DELTAS:
            est = estimate_inline(load_graph, motif, delta, SPEC)
            out[(motif.name, delta)] = payload_bytes(
                build_approx_payload(
                    load_graph.fingerprint(), motif, delta, est
                )
            )
    return out


def client_plan():
    rng = random.Random(SEED)
    keys = [(m, d) for m in EVALUATION_MOTIFS for d in DELTAS]
    return [keys[rng.randrange(len(keys))] for _ in range(NUM_CLIENTS)]


def run_wave(svc, load_graph, plan, *, timeout_s=None, spec=SPEC):
    ready = threading.Barrier(NUM_CLIENTS + 1)
    results = [None] * NUM_CLIENTS
    failures = []

    def client(i: int, motif, delta) -> None:
        try:
            ready.wait(timeout=30)
            results[i] = svc.query(
                load_graph, motif, delta, timeout_s=timeout_s, approx=spec
            )
        except Exception as exc:  # pragma: no cover - failure path
            failures.append((i, repr(exc)))

    threads = [
        threading.Thread(target=client, args=(i, m, d))
        for i, (m, d) in enumerate(plan)
    ]
    for t in threads:
        t.start()
    ready.wait(timeout=30)
    for t in threads:
        t.join(timeout=120)
    assert failures == []
    return results


@pytest.mark.timeout(300)
class TestApproxLoad:
    def test_acceptance_load(self, load_graph, expected_bytes):
        plan = client_plan()
        assert len(set(plan)) <= NUM_CLIENTS // 2  # heavy duplication

        with MotifService(max_queue=NUM_CLIENTS, lanes=4) as svc:
            svc.register_graph(load_graph, name="load")

            # -- wave 1: cold, unconstrained — the accuracy contract ----------
            results = run_wave(svc, load_graph, plan)
            for (motif, delta), result in zip(plan, results):
                assert result is not None and result.ok, result
                payload = result.payload
                assert_labelled(payload)
                assert payload["truncated"] is False
                # Converged within budget: the requested error bound holds.
                assert payload["achieved_eps"] <= SPEC.max_error
                # Deterministic under concurrency: byte-identical to the
                # single-threaded inline engine.
                assert payload_bytes(payload) == expected_bytes[
                    (motif.name, delta)
                ]

            m = svc.metrics()
            assert m.errors == 0
            assert m.approx_served >= NUM_CLIENTS
            assert m.approx_eps_p99 <= SPEC.max_error
            assert m.approx_cache_entries == len(set(plan))

            # -- wave 2: injected deadline pressure ---------------------------
            # An unreachable error target under a 150 ms deadline: no
            # run can converge, so every answer must come off the
            # degradation ladder — a truncated partial round or the
            # stale cache tier — and stay labelled.  Zero 504s.
            strict = ApproxSpec(
                max_error=1e-12, seed=3, base_samples=16,
                max_samples=1 << 30,
            )
            degraded = run_wave(
                svc, load_graph, plan, timeout_s=0.15, spec=strict
            )
            for result in degraded:
                assert result is not None and result.ok, result
                payload = result.payload
                assert_labelled(payload)
                # Zero-variance keys (motifs the graph barely contains)
                # legitimately meet even 1e-12 and hit the cache; every
                # other answer must come off the ladder, labelled as
                # a truncated partial or a stale looser estimate.
                assert result.source in ("degraded", "cache")
                if result.source == "degraded":
                    assert payload["truncated"] or (
                        payload["achieved_eps"] > strict.max_error
                    )
            # The deadline pressure was real: at least one answer was
            # served off the degradation ladder.
            assert any(r.source == "degraded" for r in degraded)

            m = svc.metrics()
            assert m.errors == 0
            assert m.cancelled == 0  # degraded serving, not 504s
            assert m.degraded_estimates + m.cache_hits > 0

            # -- final snapshot: the accuracy telemetry is populated ----------
            assert m.approx_eps_samples >= NUM_CLIENTS
            # p50 can legitimately be 0.0 (zero-variance keys); p99
            # reflects the nonzero-count keys' achieved error.
            assert m.approx_eps_p99 > 0
            rendered = svc.render_metrics()
            assert "approx served" in rendered
            assert "approx eps p99" in rendered
