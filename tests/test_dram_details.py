"""Additional DRAM model tests: routing, rows, and sustained bandwidth."""

import pytest

from repro.sim.config import DramConfig
from repro.sim.dram import DramModel


class TestRouting:
    def test_route_is_deterministic(self):
        d = DramModel(DramConfig())
        assert d._route(12345) == d._route(12345)

    def test_distinct_rows_in_same_bank(self):
        cfg = DramConfig()
        d = DramModel(cfg)
        stride = cfg.channels * cfg.banks_per_channel  # same bank, next line
        ch0, b0, r0 = d._route(0)
        lines_per_row = max(1, cfg.row_bytes // cfg.line_bytes)
        ch1, b1, r1 = d._route(stride * lines_per_row)
        assert (ch0, b0) == (ch1, b1)
        assert r1 == r0 + 1

    def test_row_conflict_reopens_row(self):
        cfg = DramConfig()
        d = DramModel(cfg)
        stride = cfg.channels * cfg.banks_per_channel
        lines_per_row = max(1, cfg.row_bytes // cfg.line_bytes)
        t = d.access(0, 0)
        t = d.access(stride * lines_per_row, t + 1000)  # row conflict
        d.access(0, t + 1000)  # conflict again
        assert d.stats.row_misses == 3
        assert d.stats.row_hits == 0


class TestSustainedBandwidth:
    def test_streaming_reaches_high_utilization(self):
        """Sequential lines across all channels should sustain most of
        the peak bandwidth once row buffers are warm."""
        cfg = DramConfig(refresh_interval_cycles=0)
        d = DramModel(cfg)
        done = 0
        n = 4096
        for line in range(n):
            done = max(done, d.access(line, 0))
        util = d.bandwidth_utilization(done)
        assert util > 0.5

    def test_random_access_worse_than_streaming(self):
        cfg = DramConfig(refresh_interval_cycles=0)
        stream = DramModel(cfg)
        done_s = 0
        for line in range(512):
            done_s = max(done_s, stream.access(line, 0))
        rand = DramModel(cfg)
        done_r = 0
        # Strided pattern hammering one bank's distinct rows.
        stride = cfg.channels * cfg.banks_per_channel * (
            cfg.row_bytes // cfg.line_bytes
        )
        for i in range(512):
            done_r = max(done_r, rand.access(i * stride, 0))
        assert done_r > done_s

    def test_busy_cycles_track_bursts(self):
        cfg = DramConfig()
        d = DramModel(cfg)
        for line in range(10):
            d.access(line, 0)
        assert d.stats.busy_cycles == 10 * cfg.burst_cycles
