"""Deterministic concurrent-load acceptance test for the serving layer.

Drives the service with 64 concurrent client threads issuing a seeded
query mix in which over half the queries are duplicates of another
in-flight or already-answered query, then asserts the serving layer's
contract all at once:

- **zero wrong answers** — every ``ok`` payload is byte-identical to a
  direct serial miner run for its ``(motif, delta)``;
- **coalesce ratio > 0** — duplicates submitted while the dispatcher is
  gated must ride a single execution;
- **cache hit-rate > 0** — a repeat wave after completion is served
  from the result cache;
- **overload is explicit** — with the dispatcher gated and the bounded
  queue full, further admission raises ``QueryRejected`` (never a
  deadlock, never a silent drop);
- the metrics snapshot reports p50/p99 latency and the shed count.

A second wave re-runs the 64 clients against a pool backend with an
injected backend failure: answers must stay byte-identical while the
per-graph circuit breaker trips into (and back out of) degraded mode.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.mining.mackey import MackeyMiner
from repro.motifs.catalog import EVALUATION_MOTIFS
from repro.resilience import FaultPlan
from repro.service import (
    MotifService,
    PoolExecutor,
    QueryRejected,
    build_payload,
    payload_bytes,
)

NUM_CLIENTS = 64
DELTAS = (20, 40)
SEED = 20260805


@pytest.fixture(scope="module")
def load_graph():
    rng = random.Random(7)
    edges = [
        (rng.randrange(12), rng.randrange(12), rng.randrange(200))
        for _ in range(60)
    ]
    edges = [(s, d if d != s else (d + 1) % 12, t) for s, d, t in edges]
    from repro.graph.temporal_graph import TemporalGraph

    return TemporalGraph(edges, num_nodes=12)


@pytest.fixture(scope="module")
def expected_bytes(load_graph):
    """Ground truth payloads per (motif name, delta), mined serially."""
    out = {}
    for motif in EVALUATION_MOTIFS:
        for delta in DELTAS:
            result = MackeyMiner(load_graph, motif, delta).mine()
            out[(motif.name, delta)] = payload_bytes(
                build_payload(
                    load_graph.fingerprint(), motif, delta, result.count,
                    result.counters.as_dict(),
                )
            )
    return out


def client_plan():
    """A seeded query per client: 8 distinct keys for 64 clients (>=50%
    of submissions necessarily duplicate another client's query)."""
    rng = random.Random(SEED)
    keys = [(m, d) for m in EVALUATION_MOTIFS for d in DELTAS]
    return [keys[rng.randrange(len(keys))] for _ in range(NUM_CLIENTS)]


class TestConcurrentLoad:
    def test_acceptance_load(self, load_graph, expected_bytes):
        plan = client_plan()
        assert len(plan) == NUM_CLIENTS
        assert len(set(plan)) <= NUM_CLIENTS // 2  # >=50% duplicates

        with MotifService(max_queue=NUM_CLIENTS, lanes=4) as svc:
            svc.register_graph(load_graph, name="load")

            # -- wave 1: coalescing under concurrency --------------------------
            # Gate the dispatcher so all 64 submissions are in flight
            # together; duplicates must coalesce, deterministically.
            svc.scheduler.pause()
            ready = threading.Barrier(NUM_CLIENTS + 1)
            results = [None] * NUM_CLIENTS
            failures = []

            def client(i: int, motif, delta) -> None:
                try:
                    ready.wait(timeout=30)
                    results[i] = svc.query(load_graph, motif, delta)
                except Exception as exc:  # pragma: no cover - failure path
                    failures.append((i, repr(exc)))

            threads = [
                threading.Thread(target=client, args=(i, m, d))
                for i, (m, d) in enumerate(plan)
            ]
            for t in threads:
                t.start()
            ready.wait(timeout=30)  # every client thread is running
            # Wait until all 64 are admitted (queued or coalesced), then
            # release the dispatcher.
            deadline = threading.Event()
            for _ in range(2000):
                if svc.scheduler.admitted >= NUM_CLIENTS:
                    break
                deadline.wait(0.01)
            assert svc.scheduler.admitted >= NUM_CLIENTS
            svc.scheduler.resume()
            for t in threads:
                t.join(timeout=60)
            assert failures == []

            # Zero wrong answers: byte-identical to the direct miner.
            for (motif, delta), result in zip(plan, results):
                assert result is not None and result.ok
                assert payload_bytes(result.payload) == expected_bytes[
                    (motif.name, delta)
                ]

            m = svc.metrics()
            assert m.coalesce_ratio > 0
            distinct = len(set(plan))
            assert m.coalesced == NUM_CLIENTS - distinct

            # -- wave 2: cache hits --------------------------------------------
            for motif, delta in plan:
                repeat = svc.query(load_graph, motif, delta)
                assert repeat.ok and repeat.source == "cache"
                assert payload_bytes(repeat.payload) == expected_bytes[
                    (motif.name, delta)
                ]
            m = svc.metrics()
            assert m.cache_hit_rate > 0
            assert m.cache_hits >= NUM_CLIENTS

            # -- wave 3: explicit overload -------------------------------------
            # Gate dispatch again and fill the bounded queue with
            # distinct keys; the next distinct query must be shed with
            # an explicit rejection carrying a retry hint.
            svc.scheduler.pause()
            svc.cache.clear()
            admitted = []
            for i in range(NUM_CLIENTS):
                admitted.append(
                    svc.submit(load_graph, EVALUATION_MOTIFS[0], 1000 + i)
                )
            with pytest.raises(QueryRejected) as exc_info:
                svc.submit(load_graph, EVALUATION_MOTIFS[0], 5000)
            assert exc_info.value.retry_after_s > 0
            svc.scheduler.resume()
            # No deadlock and no silent drop: every admitted query
            # still completes with a correct answer.
            overload_results = [p.result() for p in admitted]
            assert all(r.ok for r in overload_results)

            # -- final snapshot -------------------------------------------------
            m = svc.metrics()
            assert m.shed == 1
            assert m.latency_samples > 0
            assert m.latency_p50_s > 0
            assert m.latency_p99_s >= m.latency_p50_s
            rendered = svc.render_metrics()
            assert "shed (rejected)" in rendered
            assert "latency p99 (ms)" in rendered


class TestDegradedLoad:
    """64 concurrent clients against a backend with an injected failure:
    zero wrong answers while the breaker trips into — and back out of —
    degraded mode (the issue's acceptance wave)."""

    def test_injected_failure_wave(self, load_graph, expected_bytes):
        plan_keys = client_plan()
        # Pool backend, hair-trigger breaker, short cooldown; no result
        # cache so the backend actually sees the traffic.
        executor = PoolExecutor(
            2, breaker_failures=1, breaker_cooldown_s=0.4,
        )
        fault = FaultPlan.raise_at("executor.batch", [1])
        with fault.installed():
            with MotifService(
                executor=executor, max_queue=NUM_CLIENTS, lanes=4,
                cache_bytes=0,
            ) as svc:
                svc.register_graph(load_graph, name="load")
                ready = threading.Barrier(NUM_CLIENTS + 1)
                results = [None] * NUM_CLIENTS
                failures = []

                def client(i: int, motif, delta) -> None:
                    try:
                        ready.wait(timeout=30)
                        results[i] = svc.query(load_graph, motif, delta)
                    except Exception as exc:  # pragma: no cover
                        failures.append((i, repr(exc)))

                threads = [
                    threading.Thread(target=client, args=(i, m, d))
                    for i, (m, d) in enumerate(plan_keys)
                ]
                for t in threads:
                    t.start()
                ready.wait(timeout=30)
                for t in threads:
                    t.join(timeout=120)
                assert failures == []

                # Zero wrong answers: the injected failure and every
                # degraded (inline) execution still produced payloads
                # byte-identical to the direct serial miner.
                for (motif, delta), result in zip(plan_keys, results):
                    assert result is not None and result.ok, result
                    assert payload_bytes(result.payload) == expected_bytes[
                        (motif.name, delta)
                    ]

                # The failure was real and tripped the breaker into
                # degraded mode...
                assert len(fault.fired) == 1
                m = svc.metrics()
                assert m.errors == 0
                assert m.backend_failures >= 1
                assert m.breaker_opens >= 1
                assert m.degraded_queries >= 1

                # ...and out again: past the cooldown a probe query
                # closes it and the service reports healthy.
                import time as _time

                deadline = _time.monotonic() + 10
                while _time.monotonic() < deadline:
                    _time.sleep(0.45)
                    probe = svc.query(load_graph, EVALUATION_MOTIFS[0],
                                      DELTAS[0])
                    assert probe.ok
                    assert payload_bytes(probe.payload) == expected_bytes[
                        (EVALUATION_MOTIFS[0].name, DELTAS[0])
                    ]
                    if not svc.metrics().degraded:
                        break
                m = svc.metrics()
                assert not m.degraded and m.breakers_open == 0
                assert m.breaker_closes >= 1
                health = svc.health()
                assert health["ok"] and not health["degraded"]
