"""Deeper simulator tests: layout/config edge cases and stream timing."""

import dataclasses

import pytest

from repro.graph.generators import make_dataset
from repro.graph.temporal_graph import TemporalGraph
from repro.mining.mackey import count_motifs
from repro.motifs.catalog import M1, SINGLE_EDGE
from repro.sim.accelerator import MintSimulator
from repro.sim.config import CacheConfig, DramConfig, MintConfig
from repro.sim.layout import GraphMemoryLayout


class TestConfigEdgeCases:
    def test_with_cache_mb_small_reduces_banks(self):
        cfg = MintConfig().with_cache_mb(16 / 1024)  # 16 KB
        assert cfg.cache.num_banks == 16
        assert cfg.cache.bank_kb == 1

    def test_with_cache_mb_large_keeps_banks(self):
        cfg = MintConfig().with_cache_mb(8)
        assert cfg.cache.num_banks == 64
        assert cfg.cache.total_mb == pytest.approx(8.0)

    def test_peak_bytes_per_cycle(self):
        assert DramConfig().peak_bytes_per_cycle == 128.0

    def test_frequency_validation(self):
        with pytest.raises(ValueError):
            MintConfig(frequency_ghz=0)

    def test_cache_config_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(num_banks=0)


class TestStreamTiming:
    """The phase-1 stream must respect issue and consume rates."""

    def _cycles(self, stream_window):
        g = make_dataset("wiki-talk", scale=0.04, seed=21)
        delta = g.time_span // 30
        cfg = MintConfig(
            num_pes=8,
            stream_window=stream_window,
            cache=CacheConfig(num_banks=16, bank_kb=2),
        )
        rep = MintSimulator(g, M1, delta, cfg).run()
        return rep

    def test_wider_window_never_slower(self):
        narrow = self._cycles(1)
        wide = self._cycles(16)
        assert wide.matches == narrow.matches
        assert wide.cycles <= narrow.cycles * 1.02

    def test_single_pe_single_edge_motif_is_cheap(self):
        g = TemporalGraph([(0, 1, 10), (1, 2, 20)])
        cfg = MintConfig(num_pes=1, cache=CacheConfig(num_banks=1, bank_kb=1))
        rep = MintSimulator(g, SINGLE_EDGE, 0, cfg).run()
        assert rep.matches == 2
        # Two root tasks, each a couple of memory ops: well under 1k cycles.
        assert rep.cycles < 1000


class TestStreamCoalescer:
    """The §VI-B coalescing tracker must stay bounded and count merges."""

    def test_identical_in_flight_scan_counts_as_merge(self):
        from repro.sim.accelerator import _StreamCoalescer

        c = _StreamCoalescer()
        c.observe(addr=64, nbytes=128, start=0, done=50)
        c.observe(addr=64, nbytes=128, start=10, done=60)  # overlaps
        assert c.merged_opportunities == 1

    def test_completed_scans_are_evicted(self):
        from repro.sim.accelerator import _StreamCoalescer

        c = _StreamCoalescer()
        c.observe(addr=64, nbytes=128, start=0, done=5)
        c.observe(addr=128, nbytes=64, start=10, done=20)  # evicts the first
        assert (64, 128) not in c.recent
        c.observe(addr=64, nbytes=128, start=30, done=40)  # not a merge
        assert c.merged_opportunities == 0

    def test_table_bounded_by_in_flight_streams(self):
        from repro.sim.accelerator import _StreamCoalescer

        c = _StreamCoalescer()
        for i in range(10_000):
            c.observe(addr=64 * i, nbytes=64, start=i, done=i + 2)
        assert len(c.recent) <= 3

    def test_simulator_reports_opportunities(self):
        g = make_dataset("email-eu", scale=0.05, seed=9)
        delta = g.time_span // 30
        cfg = MintConfig(
            num_pes=8,
            task_coalescing=True,
            cache=CacheConfig(num_banks=16, bank_kb=1),
        )
        rep = MintSimulator(g, M1, delta, cfg).run()
        assert rep.merged_scan_opportunities >= 0
        assert rep.summary()["merged_scan_opportunities"] == (
            rep.merged_scan_opportunities
        )
        off = MintSimulator(
            g, M1, delta, dataclasses.replace(cfg, task_coalescing=False)
        ).run()
        assert off.merged_scan_opportunities == 0


class TestLayoutScaling:
    def test_total_bytes_scale_with_graph(self):
        small = GraphMemoryLayout.for_graph(
            make_dataset("email-eu", scale=0.05, seed=1)
        )
        large = GraphMemoryLayout.for_graph(
            make_dataset("email-eu", scale=0.2, seed=1)
        )
        assert large.total_bytes > small.total_bytes

    def test_memo_region_scales_with_nodes(self):
        g1 = TemporalGraph([(0, 1, 1)], num_nodes=2)
        g2 = TemporalGraph([(0, 1, 1)], num_nodes=2000)
        l1 = GraphMemoryLayout.for_graph(g1)
        l2 = GraphMemoryLayout.for_graph(g2)
        assert (l2.memo_in_base - l2.memo_out_base) > (
            l1.memo_in_base - l1.memo_out_base
        )


class TestPrefetchPollution:
    def test_prefetch_lines_enter_cache(self):
        g = make_dataset("wiki-talk", scale=0.04, seed=21)
        delta = g.time_span // 30
        base_cfg = MintConfig(
            num_pes=8, cache=CacheConfig(num_banks=16, bank_kb=1)
        )
        pf_cfg = dataclasses.replace(base_cfg, prefetch_degree=4)
        base = MintSimulator(g, M1, delta, base_cfg).run()
        pf = MintSimulator(g, M1, delta, pf_cfg).run()
        assert pf.cache.accesses > base.cache.accesses
        assert pf.dram.total_bytes > base.dram.total_bytes


class TestCountsUnderAllKnobs:
    """No timing knob may ever change the functional result."""

    @pytest.mark.parametrize(
        "overrides",
        [
            {"stream_window": 1},
            {"phase2_window": 1},
            {"phase2_window": 16},
            {"prefetch_degree": 3},
            {"task_coalescing": True},
            {"memoize": False},
            {"per_tree_index_cache": False},
            {"ideal_memory": True},
            {"memo_lag_roots": 0},
            {"memo_lag_roots": 10_000},
        ],
    )
    def test_knob_invariance(self, overrides):
        g = make_dataset("superuser", scale=0.05, seed=23)
        delta = g.time_span // 30
        expected = count_motifs(g, M1, delta)
        cfg = MintConfig(
            num_pes=16, cache=CacheConfig(num_banks=16, bank_kb=1), **overrides
        )
        assert MintSimulator(g, M1, delta, cfg).run().matches == expected
