"""Tests for the motif DSL parser and binary graph I/O."""

import numpy as np
import pytest

from repro.graph.generators import make_dataset
from repro.graph.io_binary import (
    BinaryFormatError,
    load_binary,
    save_binary,
)
from repro.motifs.catalog import M1, M4
from repro.motifs.parse import MotifParseError, format_motif, parse_motif


class TestParseMotif:
    def test_parse_m1(self):
        m = parse_motif("A->B, B->C, C->A")
        assert m.edges == M1.edges

    def test_parse_semicolons_and_whitespace(self):
        m = parse_motif("  u1 ->u2 ;u2->   u1  ")
        assert m.edges == ((0, 1), (1, 0))

    def test_parse_star(self):
        m = parse_motif("a->b, a->c, a->d, a->e")
        assert m.edges == M4.edges

    def test_comments(self):
        m = parse_motif("A->B  # first contact\nB->A  # reply")
        assert m.num_edges == 2

    def test_labels_assigned_by_first_appearance(self):
        m = parse_motif("Z->A, A->Q")
        assert m.edges == ((0, 1), (1, 2))

    def test_empty_rejected(self):
        with pytest.raises(MotifParseError, match="no edges"):
            parse_motif("   # nothing here")

    def test_bad_edge_rejected(self):
        with pytest.raises(MotifParseError, match="cannot parse"):
            parse_motif("A=>B")

    def test_self_loop_surfaces_as_parse_error(self):
        with pytest.raises(MotifParseError, match="self-loop"):
            parse_motif("A->A")

    def test_too_many_edges_surfaces(self):
        spec = ", ".join("A->B" if i % 2 == 0 else "B->A" for i in range(9))
        with pytest.raises(MotifParseError, match="at most"):
            parse_motif(spec)

    def test_roundtrip_through_format(self):
        for motif in (M1, M4, parse_motif("A->B, C->B, D->B")):
            again = parse_motif(format_motif(motif))
            assert again.edges == motif.edges


class TestBinaryIO:
    def test_roundtrip(self, tmp_path):
        g = make_dataset("email-eu", scale=0.05, seed=2)
        path = tmp_path / "g.npz"
        save_binary(g, path)
        loaded = load_binary(path)
        assert loaded.num_nodes == g.num_nodes
        assert np.array_equal(loaded.src, g.src)
        assert np.array_equal(loaded.dst, g.dst)
        assert np.array_equal(loaded.ts, g.ts)
        assert np.array_equal(loaded.out_edge_idx, g.out_edge_idx)
        assert np.array_equal(loaded.in_offsets, g.in_offsets)

    def test_roundtrip_preserves_mining(self, tmp_path):
        from repro.mining.mackey import count_motifs

        g = make_dataset("mathoverflow", scale=0.05, seed=2)
        path = tmp_path / "g.npz"
        save_binary(g, path)
        loaded = load_binary(path)
        delta = g.time_span // 30
        assert count_motifs(loaded, M1, delta) == count_motifs(g, M1, delta)

    def test_empty_graph(self, tmp_path):
        from repro.graph.temporal_graph import TemporalGraph

        g = TemporalGraph([], num_nodes=3)
        path = tmp_path / "e.npz"
        save_binary(g, path)
        assert load_binary(path).num_edges == 0

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, magic=np.array("other"), version=np.array(1))
        with pytest.raises(BinaryFormatError, match="not a mint-repro"):
            load_binary(path)

    def test_corruption_detected(self, tmp_path):
        g = make_dataset("email-eu", scale=0.05, seed=2)
        path = tmp_path / "g.npz"
        save_binary(g, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["ts"] = arrays["ts"] + 1  # corrupt timestamps
        np.savez_compressed(path, **arrays)
        with pytest.raises(BinaryFormatError, match="checksum"):
            load_binary(path)

    def test_not_json_garbage(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not a zip at all")
        with pytest.raises(Exception):
            load_binary(path)
