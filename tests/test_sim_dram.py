"""Tests for the DDR4 DRAM timing model."""

import pytest

from repro.sim.config import DramConfig
from repro.sim.dram import DramModel


@pytest.fixture
def dram():
    return DramModel(DramConfig())


class TestTiming:
    def test_first_access_is_row_miss(self, dram):
        done = dram.access(0, now=0)
        assert done > 0
        assert dram.stats.row_misses == 1
        assert dram.stats.row_hits == 0

    def test_same_row_hits(self, dram):
        first = dram.access(0, now=0)
        # Line 8 maps to the same channel (0 % 8) and same bank/row.
        second = dram.access(8 * 16, now=first)  # beyond bank stride?
        # Regardless of mapping, a repeat of line 0 is a row hit:
        third = dram.access(0, now=second)
        assert dram.stats.row_hits >= 1

    def test_row_hit_faster_than_miss(self):
        cfg = DramConfig()
        d = DramModel(cfg)
        miss_done = d.access(0, now=0)
        base = miss_done + 1000
        hit_done = d.access(0, now=base) - base
        fresh = DramModel(cfg)
        miss_cost = fresh.access(0, now=0)
        assert hit_done < miss_cost

    def test_completion_monotone_with_now(self, dram):
        a = dram.access(0, now=0)
        b = dram.access(0, now=a + 10)
        assert b > a

    def test_channel_interleaving(self, dram):
        # Lines 0..7 land on the 8 different channels.
        seen = {dram._route(line)[0] for line in range(8)}
        assert seen == set(range(8))

    def test_bank_interleaving(self, dram):
        banks = {dram._route(line * 8)[1] for line in range(16)}
        assert banks == set(range(16))


class TestBandwidthAccounting:
    def test_bytes_counted(self, dram):
        dram.access(0, 0)
        dram.access(1, 0)
        dram.access(2, 0, is_write=True)
        assert dram.stats.read_bytes == 128
        assert dram.stats.write_bytes == 64
        assert dram.stats.total_bytes == 192
        assert dram.stats.reads == 2
        assert dram.stats.writes == 1

    def test_bandwidth_utilization_bounds(self, dram):
        for i in range(100):
            dram.access(i, 0)
        u = dram.bandwidth_utilization(10_000)
        assert 0.0 < u <= 1.0

    def test_zero_cycles_zero_utilization(self, dram):
        assert dram.bandwidth_utilization(0) == 0.0

    def test_peak_bandwidth_matches_table2(self):
        cfg = DramConfig()
        assert cfg.peak_gbps(1.6) == pytest.approx(204.8)

    def test_channel_serializes_bursts(self):
        """Back-to-back accesses to one channel cannot exceed one burst
        per burst_cycles."""
        cfg = DramConfig()
        d = DramModel(cfg)
        # All to channel 0 (line % 8 == 0), different banks.
        dones = [d.access(8 * i, now=0) for i in range(32)]
        dones.sort()
        for a, b in zip(dones, dones[1:]):
            assert b - a >= cfg.burst_cycles

    def test_row_hit_rate_stat(self, dram):
        dram.access(0, 0)
        dram.access(0, 1000)
        assert dram.stats.row_hit_rate == pytest.approx(0.5)
