"""Smoke tests for the experiment harness (every table/figure runner).

These run at TEST_POLICY scale — tiny graphs — and verify structure and
basic qualitative properties rather than the full-scale shapes, which the
benchmark suite reproduces.
"""

import pytest

from repro.analysis import experiments as ex
from repro.motifs.catalog import M1, M2
from repro.sim.config import MintConfig

POLICY = ex.TEST_POLICY


class TestWorkloadConstruction:
    def test_build_workload(self):
        w = ex.build_workload("email-eu", POLICY)
        assert w.graph.num_edges > 0
        assert w.delta >= 1
        assert 0 < w.ws_ratio <= 1
        assert w.window_edges <= POLICY.window_edges_cap

    def test_delta_targets_window_density(self):
        w = ex.build_workload("wiki-talk", POLICY)
        k_eff = w.graph.num_edges * w.delta / max(1, w.graph.time_span)
        assert k_eff == pytest.approx(w.window_edges, rel=0.1)

    def test_scaled_configs(self):
        w = ex.build_workload("stackoverflow", POLICY)
        cfg = ex.scaled_mint_config(w, POLICY)
        assert cfg.cache.total_bytes < MintConfig().cache.total_bytes
        assert cfg.cache.num_banks == 64
        cpu = ex.scaled_cpu_model(w)
        assert cpu.spec.llc_bytes < 512 * 1024 * 1024

    def test_cache_scale_multiplier(self):
        w = ex.build_workload("wiki-talk", POLICY)
        c1 = ex.scaled_mint_config(w, POLICY, cache_scale=1.0)
        c4 = ex.scaled_mint_config(w, POLICY, cache_scale=4.0)
        assert c4.cache.total_bytes > c1.cache.total_bytes

    def test_paper_window_edges(self):
        k_so = ex.paper_window_edges(ex.dataset_spec("stackoverflow"))
        k_em = ex.paper_window_edges(ex.dataset_spec("email-eu"))
        assert k_so > 100  # stackoverflow: ~540 edges/hour
        assert 5 < k_em < 30


class TestRunners:
    def test_table1(self):
        res = ex.run_table1(POLICY)
        assert len(res.rows) == 6
        assert "email-eu" in res.table()

    def test_table2(self):
        out = ex.run_table2()
        assert "512x" in out
        assert "204.8" in out

    def test_fig2(self):
        res = ex.run_fig2(POLICY, datasets=("email-eu", "wiki-talk"))
        assert set(res.scaling) == {"em", "wt"}
        for curve in res.scaling.values():
            assert curve[0][1] == pytest.approx(1.0)  # normalized to 1 thread
        assert sum(res.cpi_stack.values()) == pytest.approx(1.0)
        assert "CPI stack" in res.table()

    def test_fig7(self):
        res = ex.run_fig7(POLICY, datasets=("wiki-talk",))
        assert len(res.series) == 2
        assert "m1_wt_node1" in res.series

    def test_fig10(self):
        res = ex.run_fig10(POLICY, datasets=("email-eu",), motifs=(M1,))
        assert len(res.rows) == 1
        row = res.rows[0]
        assert row.speedup_memo > 0
        assert row.traffic_reduction > 0
        assert "geomean" in res.table()

    def test_fig11(self):
        res = ex.run_fig11(POLICY, datasets=("email-eu",), motifs=(M1, M2))
        assert len(res.rows) == 2
        g = res.geomeans()
        assert g["vs Mackey CPU"] > 0
        assert "vs Paranjape" in g  # M1/M2 support it
        assert res.rows[0].vs_paranjape is not None

    def test_fig11_skips_paranjape_for_m3_m4(self):
        from repro.motifs.catalog import M3

        res = ex.run_fig11(POLICY, datasets=("email-eu",), motifs=(M3,))
        assert res.rows[0].vs_paranjape is None

    def test_fig12(self):
        res = ex.run_fig12(POLICY, datasets=("email-eu",), motifs=(M1,))
        assert len(res.rows) == 1
        assert res.rows[0].static_to_temporal_ratio >= 0
        assert "FlexMiner" in res.table()

    def test_fig13(self):
        res = ex.run_fig13(
            POLICY,
            dataset="email-eu",
            pe_counts=(1, 8),
            cache_scales=(1.0, 2.0),
        )
        assert len(res.cells) == 4
        grid = res.grid("speedup")
        assert grid[(1, 1.0)] == pytest.approx(1.0)
        # More PEs at the same cache must not be slower.
        assert grid[(8, 1.0)] >= grid[(1, 1.0)] * 0.9

    def test_fig14(self):
        out = ex.run_fig14()
        assert "28.3" in out
        assert "Context Mem" in out
