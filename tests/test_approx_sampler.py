"""Statistical validity of the interval sampler (repro.approx).

Three layers of evidence, strongest first:

- **Exact unbiasedness** — on small graphs the start domain is
  enumerable, so ``E[estimate] = Σ_x p(x) · T(x)`` is computed as an
  exact finite sum and compared to the exact count (no randomness, no
  tolerance beyond float error).  Checked for both importance modes.
- **Generator-level sanity** — on each of the six synthetic datasets a
  seeded run's estimate must land inside a wide (≈99.9%) interval
  around the exact count; deterministic because the seed is pinned.
- **Coverage rate** — across many seeds the nominal-confidence CI must
  cover the exact count at close to its advertised rate.

Plus the determinism contract chunked serving relies on: identical
``(graph, motif, δ, seed)`` runs are byte-identical across inline,
pooled and supervised execution, and batch merging is commutative.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.approx.engine import adaptive_estimate, estimate_inline, round_sizes
from repro.approx.estimate import (
    ApproxEstimate,
    ApproxSpec,
    SampleBatch,
    build_approx_payload,
    normal_quantile,
)
from repro.approx.sampler import IntervalSampler, window_length_for
from repro.graph.generators import DATASET_NAMES, make_dataset
from repro.mining.mackey import MackeyMiner, count_motifs
from repro.mining.results import SearchCounters
from repro.motifs.catalog import M1, motif_by_name
from tests.conftest import random_temporal_graph


@pytest.fixture(scope="module")
def graph():
    rng = random.Random(17)
    return random_temporal_graph(rng, 30, 400, time_range=400)


DELTA = 50


class TestSpecAndQuantile:
    def test_normal_quantile_values(self):
        assert normal_quantile(0.95) == pytest.approx(1.959964, abs=1e-5)
        assert normal_quantile(0.99) == pytest.approx(2.575829, abs=1e-5)
        with pytest.raises(ValueError):
            normal_quantile(1.0)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="max_error"):
            ApproxSpec(max_error=0)
        with pytest.raises(ValueError, match="confidence"):
            ApproxSpec(confidence=1.5)
        with pytest.raises(ValueError, match="c must be"):
            ApproxSpec(c=1.0)
        with pytest.raises(ValueError, match="importance"):
            ApproxSpec(importance="entropy")
        with pytest.raises(ValueError, match="base_samples"):
            ApproxSpec(base_samples=1)
        with pytest.raises(ValueError, match="max_samples"):
            ApproxSpec(base_samples=16, max_samples=8)

    def test_round_sizes_double_to_cap(self):
        spec = ApproxSpec(base_samples=16, max_samples=100)
        assert list(round_sizes(spec)) == [16, 32, 64, 100]

    def test_window_length_floor(self):
        # c·δ below δ+1 is floored so every ≤δ instance stays coverable.
        assert window_length_for(2, ApproxSpec(c=1.25)) == 3
        assert window_length_for(100, ApproxSpec(c=1.25)) == 125


class TestSampleBatch:
    def test_merge_is_commutative(self):
        def mk(items):
            c = SearchCounters()
            c.searches = sum(1 for _ in items)
            return SampleBatch(totals=dict(items), counters=c)

        ab = mk([(0, 1.0), (1, 2.0)]).merge(mk([(2, 3.0)]))
        ba = mk([(2, 3.0)]).merge(mk([(0, 1.0), (1, 2.0)]))
        assert ab.ordered_values() == ba.ordered_values() == [1.0, 2.0, 3.0]
        assert ab.counters.as_dict() == ba.counters.as_dict()

    def test_merge_rejects_overlap(self):
        a = SampleBatch(totals={0: 1.0})
        with pytest.raises(ValueError, match="overlap"):
            a.merge(SampleBatch(totals={0: 2.0}))

    def test_payload_roundtrip(self):
        batch = SampleBatch(totals={3: 1.5, 1: 0.0})
        again = SampleBatch.from_payload(batch.as_payload())
        assert again.totals == batch.totals
        assert again.counters.as_dict() == batch.counters.as_dict()

    def test_estimate_needs_two_samples(self):
        with pytest.raises(ValueError, match="two samples"):
            ApproxEstimate.from_batch(
                SampleBatch(totals={0: 1.0}), ApproxSpec(), 10
            )


class TestInclusionProbability:
    @pytest.mark.parametrize("importance", ["uniform", "density"])
    def test_cdf_is_a_distribution(self, graph, importance):
        s = IntervalSampler(
            graph, M1, DELTA, ApproxSpec(importance=importance, bins=32)
        )
        # Total mass over the whole start domain is exactly 1.
        assert s._start_cdf(s._start_hi) == pytest.approx(1.0)
        assert s._start_cdf(s._start_lo - 1) == 0.0
        # Monotone non-decreasing across bin boundaries.
        xs = list(range(s._start_lo, s._start_hi + 1, 17))
        cdf = [s._start_cdf(x) for x in xs]
        assert all(b >= a - 1e-12 for a, b in zip(cdf, cdf[1:]))

    def test_uniform_matches_direct_count(self, graph):
        # Under uniform starts, the inclusion probability of a span
        # [a, b] must equal (W - (b - a)) / #starts exactly.
        s = IntervalSampler(graph, M1, DELTA, ApproxSpec(importance="uniform"))
        n_starts = s._start_hi - s._start_lo + 1
        w = s.window_length
        for a, b in [(10, 10), (10, 40), (100, 100 + DELTA)]:
            expected = (w - (b - a)) / n_starts
            assert s.inclusion_probability(a, b) == pytest.approx(expected)

    def test_every_instance_has_positive_probability(self, graph):
        s = IntervalSampler(graph, M1, DELTA)
        result = MackeyMiner(graph, M1, DELTA, record_matches=True).mine()
        for match in result.matches:
            first = int(graph.time(match.edge_indices[0]))
            last = int(graph.time(match.edge_indices[-1]))
            assert s.inclusion_probability(first, last) > 0.0

    def test_empty_graph_rejected(self):
        from repro.graph.temporal_graph import TemporalGraph

        with pytest.raises(ValueError, match="empty graph"):
            IntervalSampler(TemporalGraph([]), M1, 10)


class TestExactUnbiasedness:
    """Enumerate the whole start domain: E[estimate] == exact count."""

    @pytest.mark.parametrize("importance", ["uniform", "density"])
    @pytest.mark.parametrize("motif_name", ["M1", "path3"])
    def test_expectation_equals_exact_count(self, importance, motif_name):
        rng = random.Random(5)
        g = random_temporal_graph(rng, 10, 60, time_range=120)
        motif = motif_by_name(motif_name)
        delta = 30
        exact = count_motifs(g, motif, delta)
        assert exact > 0, "test graph must contain the motif"
        s = IntervalSampler(
            g, motif, delta, ApproxSpec(importance=importance, bins=16)
        )
        expectation = 0.0
        for x in range(s._start_lo, s._start_hi + 1):
            p_x = s._start_cdf(x) - s._start_cdf(x - 1)
            window = g.subgraph_by_time(x, x + s.window_length)
            if window.num_edges < motif.num_edges:
                continue
            r = MackeyMiner(window, motif, delta, record_matches=True).mine()
            t_x = 0.0
            for match in r.matches or ():
                first = int(window.time(match.edge_indices[0]))
                last = int(window.time(match.edge_indices[-1]))
                t_x += 1.0 / s.inclusion_probability(first, last)
            expectation += p_x * t_x
        assert expectation == pytest.approx(exact, rel=1e-9)


class TestGeneratorEstimates:
    @pytest.mark.parametrize("dataset", sorted(DATASET_NAMES))
    def test_seeded_estimate_lands_in_wide_interval(self, dataset):
        g = make_dataset(dataset, scale=0.05, seed=11)
        delta = max(1, g.time_span // 20)
        exact = count_motifs(g, M1, delta)
        spec = ApproxSpec(
            max_error=0.15, seed=4, base_samples=64, max_samples=512
        )
        est = estimate_inline(g, M1, delta, spec)
        # A ~99.99% interval around the exact count (+1 absolute slack
        # for near-zero counts): deterministic given the pinned seed,
        # and far looser than the sampler's own reported CI.
        slack = 3.9 * est.std_error + 1.0
        assert abs(est.estimate - exact) <= slack, (
            dataset, exact, est.estimate, est.std_error
        )


class TestCoverage:
    def test_ci_coverage_rate(self, graph):
        exact = count_motifs(graph, M1, DELTA)
        confidence = 0.9
        seeds = range(40)
        covered = 0
        for seed in seeds:
            s = IntervalSampler(
                graph, M1, DELTA,
                ApproxSpec(confidence=confidence, seed=seed),
            )
            est = s.estimate(96)
            if est.ci_low <= exact <= est.ci_high:
                covered += 1
        rate = covered / len(seeds)
        # Nominal 0.90 minus generous binomial slack for 40 trials.
        assert rate >= 0.75, f"coverage {rate:.2f} across {len(seeds)} seeds"


class TestDeterminismAcrossBackends:
    """Identical (graph, motif, δ, seed) ⇒ byte-identical estimates."""

    @pytest.fixture(scope="class")
    def spec(self):
        return ApproxSpec(max_error=0.3, seed=9, base_samples=32,
                          max_samples=128)

    @pytest.fixture(scope="class")
    def inline_est(self, graph, spec):
        return estimate_inline(graph, M1, DELTA, spec)

    def test_chunking_is_invisible(self, graph, spec, inline_est):
        # Reassembling arbitrary chunk splits in arbitrary order gives
        # the same batch the one-shot range produces.
        s = IntervalSampler(graph, M1, DELTA, spec)
        n = inline_est.num_samples
        merged = SampleBatch()
        cuts = sorted({0, 7, n // 3, n // 2, n})
        chunks = [s.sample_range(lo, hi)
                  for lo, hi in zip(cuts, cuts[1:]) if hi > lo]
        for chunk in reversed(chunks):
            merged.merge(chunk)
        est = ApproxEstimate.from_batch(merged, spec, s.window_length)
        assert est.stats_dict() == inline_est.stats_dict()

    def test_pooled_matches_inline_bytes(self, graph, spec, inline_est):
        from repro.mining.parallel import MiningPool
        from repro.service.query import payload_bytes

        window = window_length_for(DELTA, spec)
        with MiningPool(graph, 2) as pool:
            pooled = adaptive_estimate(
                lambda lo, hi: pool.sample_intervals(M1, DELTA, spec, lo, hi),
                spec, window,
            )
        fp = graph.fingerprint()
        assert payload_bytes(
            build_approx_payload(fp, M1, DELTA, pooled)
        ) == payload_bytes(build_approx_payload(fp, M1, DELTA, inline_est))

    @pytest.mark.timeout(180)
    def test_supervised_matches_inline_bytes(self, graph, spec, inline_est):
        from repro.resilience import SupervisedMiningPool
        from repro.service.query import payload_bytes

        window = window_length_for(DELTA, spec)
        with SupervisedMiningPool(graph, 2) as pool:
            sup = adaptive_estimate(
                lambda lo, hi: pool.sample_intervals(M1, DELTA, spec, lo, hi),
                spec, window,
            )
        fp = graph.fingerprint()
        assert payload_bytes(
            build_approx_payload(fp, M1, DELTA, sup)
        ) == payload_bytes(build_approx_payload(fp, M1, DELTA, inline_est))


class TestAdaptiveEngine:
    def test_stops_at_convergence(self, graph):
        # A huge error budget converges after the first round.
        spec = ApproxSpec(max_error=100.0, base_samples=8, max_samples=512)
        est = estimate_inline(graph, M1, DELTA, spec)
        assert est.num_samples == 8
        assert est.converged and not est.truncated

    def test_budget_exhaustion_reported(self, graph):
        spec = ApproxSpec(max_error=1e-6, base_samples=8, max_samples=16)
        est = estimate_inline(graph, M1, DELTA, spec)
        assert est.num_samples == 16
        assert not est.converged and not est.truncated

    def test_cancel_returns_truncated_partial(self, graph):
        spec = ApproxSpec(max_error=1e-6, base_samples=8, max_samples=512)
        rounds = []
        est = estimate_inline(
            graph, M1, DELTA, spec,
            cancel_check=lambda: len(rounds) >= 2,
            on_round=rounds.append,
        )
        assert est.truncated
        assert est.num_samples == rounds[-1].num_samples == 16

    def test_cancel_mid_first_round_raises(self, graph):
        from repro.mining.parallel import MiningCancelled

        def exploding_range(lo, hi):
            raise MiningCancelled("deadline")

        spec = ApproxSpec()
        with pytest.raises(MiningCancelled):
            adaptive_estimate(exploding_range, spec, 10)

    def test_accuracy_tag_format(self, graph):
        spec = ApproxSpec(max_error=0.5, confidence=0.95, base_samples=32,
                          max_samples=64)
        est = estimate_inline(graph, M1, DELTA, spec)
        assert est.accuracy.startswith("approx(eps=")
        assert est.accuracy.endswith("alpha=0.05)")


class TestPrestoErrorBounds:
    """Satellite: PrestoEstimate carries the same error-bound block."""

    def test_presto_ci_and_stats_dict(self, graph):
        from repro.mining.presto import PrestoEstimator

        est = PrestoEstimator(graph, M1, DELTA, seed=3).estimate(64)
        assert est.ci == (est.ci_low, est.ci_high)
        assert est.ci_low <= est.estimate <= est.ci_high
        half = (est.ci_high - est.ci_low) / 2.0
        assert half == pytest.approx(normal_quantile(0.95) * est.std_error)
        stats = est.stats_dict()
        assert set(stats) == {
            "estimate", "stderr", "ci", "confidence", "achieved_eps",
            "num_samples",
        }
        assert stats["confidence"] == 0.95
        assert stats["achieved_eps"] == pytest.approx(
            half / max(abs(est.estimate), 1.0)
        )

    def test_single_sample_ci_is_infinite(self, graph):
        from repro.mining.presto import PrestoEstimator

        est = PrestoEstimator(graph, M1, DELTA, seed=3).estimate(1)
        assert est.ci_low == -math.inf and est.ci_high == math.inf
