"""Tests for streaming match consumption and motif time series."""

import numpy as np
import pytest

from repro.analysis.timeseries import motif_count_timeseries
from repro.graph.generators import make_dataset
from repro.graph.temporal_graph import TemporalGraph
from repro.mining.mackey import MackeyMiner, count_motifs
from repro.motifs.catalog import M1, PING_PONG


class TestOnMatchCallback:
    def test_callback_sees_every_match(self, tiny_graph):
        seen = []
        result = MackeyMiner(tiny_graph, M1, 30, on_match=seen.append).mine()
        assert len(seen) == result.count == 2

    def test_callback_matches_equal_recorded(self, burst_graph):
        seen = []
        recorded = MackeyMiner(
            burst_graph, PING_PONG, 8, record_matches=True,
            on_match=seen.append,
        ).mine()
        assert [m.edge_indices for m in seen] == [
            m.edge_indices for m in recorded.matches
        ]

    def test_callback_without_recording(self, burst_graph):
        seen = []
        result = MackeyMiner(burst_graph, PING_PONG, 8, on_match=seen.append).mine()
        assert result.matches is None
        assert len(seen) == result.count


class TestTimeSeries:
    @pytest.fixture(scope="class")
    def graph(self):
        return make_dataset("email-eu", scale=0.15, seed=27)

    def test_totals_match_exact_count(self, graph):
        delta = graph.time_span // 40
        series = motif_count_timeseries(graph, M1, delta, num_buckets=20)
        assert series.total == count_motifs(graph, M1, delta)
        assert series.num_buckets == 20

    def test_bucket_edges_cover_span(self, graph):
        delta = graph.time_span // 40
        series = motif_count_timeseries(graph, M1, delta, num_buckets=10)
        assert series.bucket_edges[0] <= graph.ts[0]
        assert series.bucket_edges[-1] > graph.ts[-1]

    def test_peak_and_burstiness(self, graph):
        delta = graph.time_span // 40
        series = motif_count_timeseries(graph, M1, delta, num_buckets=20)
        if series.total:
            peak = series.peak_bucket()
            assert series.counts[peak] == series.counts.max()
            assert series.burstiness() >= 1.0

    def test_bucket_span(self, graph):
        delta = graph.time_span // 40
        series = motif_count_timeseries(graph, M1, delta, num_buckets=4)
        lo, hi = series.bucket_span(0)
        assert lo < hi

    def test_injected_burst_detected(self):
        """A planted burst of ping-pongs lands in one anomalous bucket."""
        rng = np.random.default_rng(3)
        edges = []
        for _ in range(400):  # sparse background over a long span
            a, b = rng.integers(0, 50, size=2)
            if a == b:
                b = (b + 1) % 50
            edges.append((int(a), int(b), int(rng.uniform(0, 1_000_000))))
        for i in range(30):  # dense ping-pong burst around t=500k
            edges.append((1, 2, 500_000 + 20 * i))
            edges.append((2, 1, 500_000 + 20 * i + 7))
        g = TemporalGraph(edges)
        series = motif_count_timeseries(g, PING_PONG, delta=500, num_buckets=50)
        anomalies = series.anomalous_buckets(z_threshold=3.0)
        assert anomalies, "burst not detected"
        lo, hi = series.bucket_span(anomalies[0])
        assert lo <= 500_000 + 700 and hi >= 500_000

    def test_empty_graph(self):
        g = TemporalGraph([], num_nodes=2)
        series = motif_count_timeseries(g, M1, 10)
        assert series.total == 0

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            motif_count_timeseries(graph, M1, 10, num_buckets=0)
