"""HTTP endpoint tests for ``repro serve``.

Binds a real :class:`ServiceHTTPServer` to an ephemeral port, drives it
with ``http.client`` from the same process and checks every route plus
the error mapping (400 bad input, 404 unknown, 429 overload with
``Retry-After``, 504 missed deadline).
"""

from __future__ import annotations

import json
import threading
from http.client import HTTPConnection

import pytest

from repro.graph.temporal_graph import TemporalGraph
from repro.mining.mackey import MackeyMiner
from repro.motifs.catalog import M1
from repro.service import MotifService, build_payload, make_server, payload_bytes

DELTA = 30


@pytest.fixture
def served_graph(burst_graph):
    """A live server with one registered graph; yields (conn, graph, fp)."""
    service = MotifService(max_queue=4)
    fp = service.register_graph(burst_graph, name="burst")
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    conn = HTTPConnection(host, port, timeout=10)
    try:
        yield conn, burst_graph, fp, service
    finally:
        conn.close()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        service.close()


def request(conn, method, path, body=None):
    payload = None if body is None else json.dumps(body)
    headers = {"Content-Type": "application/json"} if payload else {}
    conn.request(method, path, body=payload, headers=headers)
    resp = conn.getresponse()
    raw = resp.read()
    return resp, json.loads(raw) if raw else {}


class TestRoutes:
    def test_healthz(self, served_graph):
        conn, *_ = served_graph
        resp, body = request(conn, "GET", "/healthz")
        assert resp.status == 200
        assert body["ok"] is True
        assert body["degraded"] is False
        assert body["dispatcher_alive"] is True
        assert body["queue_depth"] == 0
        assert body["breakers"] == {}
        assert body["dispatcher_crashes"] == 0

    def test_query_matches_direct_miner(self, served_graph):
        conn, graph, fp, _ = served_graph
        resp, body = request(
            conn, "POST", "/query",
            {"graph": "burst", "motif": "M1", "delta": DELTA},
        )
        assert resp.status == 200
        result = MackeyMiner(graph, M1, DELTA).mine()
        expected = build_payload(fp, M1, DELTA, result.count,
                                 result.counters.as_dict())
        assert payload_bytes(body) == payload_bytes(expected)

    def test_query_by_fingerprint_and_motif_spec(self, served_graph):
        conn, graph, fp, _ = served_graph
        resp, body = request(
            conn, "POST", "/query",
            {"graph": fp, "motif_spec": "A->B, B->C, C->A", "delta": DELTA},
        )
        assert resp.status == 200
        # Same canonical key as M1: the count agrees.
        assert body["count"] == MackeyMiner(graph, M1, DELTA).mine().count

    def test_graphs_listing(self, served_graph):
        conn, graph, fp, _ = served_graph
        resp, body = request(conn, "GET", "/graphs")
        assert resp.status == 200
        assert body["graphs"]["burst"]["fingerprint"] == fp
        assert body["graphs"]["burst"]["num_edges"] == graph.num_edges

    def test_graph_upload_then_query(self, served_graph):
        conn, *_ = served_graph
        edges = [[0, 1, 5], [1, 2, 10], [2, 0, 20]]
        resp, body = request(
            conn, "POST", "/graphs", {"name": "tri", "edges": edges}
        )
        assert resp.status == 200
        expected_fp = TemporalGraph(
            [tuple(e) for e in edges]
        ).fingerprint()
        assert body["fingerprint"] == expected_fp
        resp, body = request(
            conn, "POST", "/query",
            {"graph": "tri", "motif": "M1", "delta": 100},
        )
        assert resp.status == 200 and body["count"] == 1

    def test_metrics_json_and_text(self, served_graph):
        conn, *_ = served_graph
        request(conn, "POST", "/query",
                {"graph": "burst", "motif": "M1", "delta": DELTA})
        resp, body = request(conn, "GET", "/metrics")
        assert resp.status == 200
        assert body["metrics"]["admitted"] >= 1
        assert "coalesce_ratio" in body["metrics"]
        conn.request("GET", "/metrics?format=text")
        resp = conn.getresponse()
        text = resp.read().decode()
        assert resp.status == 200
        assert "coalesce ratio" in text


class TestStreamsRoutes:
    def test_stream_lifecycle(self, served_graph):
        conn, graph, _, service = served_graph
        resp, body = request(
            conn, "POST", "/streams",
            {"name": "live", "motif": "M1", "delta": DELTA},
        )
        assert resp.status == 200 and body["stream"] == "live"
        edges = list(zip(graph.src.tolist(), graph.dst.tolist(),
                         graph.ts.tolist()))
        resp, body = request(
            conn, "POST", "/streams/live/edges", {"edges": edges}
        )
        assert resp.status == 200
        assert body["appended"] == graph.num_edges
        resp, body = request(conn, "GET", "/streams/live")
        assert resp.status == 200
        assert body["motif"] == "M1" and body["num_edges"] == graph.num_edges
        resp, body = request(
            conn, "POST", "/streams/live/window-query",
            {"motif": "M2"},
        )
        assert resp.status == 200
        window = service._stream("live").counter.window_snapshot()
        assert body["graph"] == window.fingerprint()

    def test_unknown_stream_404(self, served_graph):
        conn, *_ = served_graph
        resp, body = request(conn, "GET", "/streams/nope")
        assert resp.status == 404 and "unknown stream" in body["error"]


class TestErrorMapping:
    def test_unknown_route_404(self, served_graph):
        conn, *_ = served_graph
        resp, _ = request(conn, "GET", "/nope")
        assert resp.status == 404
        resp, _ = request(conn, "POST", "/nope", {"x": 1})
        assert resp.status == 404

    def test_unknown_graph_404(self, served_graph):
        conn, *_ = served_graph
        resp, body = request(
            conn, "POST", "/query",
            {"graph": "missing", "motif": "M1", "delta": DELTA},
        )
        assert resp.status == 404 and "unknown graph" in body["error"]

    def test_unknown_motif_404(self, served_graph):
        conn, *_ = served_graph
        resp, _ = request(
            conn, "POST", "/query",
            {"graph": "burst", "motif": "M99", "delta": DELTA},
        )
        assert resp.status == 404

    def test_missing_body_400(self, served_graph):
        conn, *_ = served_graph
        conn.request("POST", "/query")
        resp = conn.getresponse()
        body = json.loads(resp.read())
        assert resp.status == 400 and "body" in body["error"]

    def test_invalid_json_400(self, served_graph):
        conn, *_ = served_graph
        conn.request("POST", "/query", body="{not json",
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        assert resp.status == 400
        assert "invalid JSON" in json.loads(resp.read())["error"]

    def test_missing_field_400(self, served_graph):
        conn, *_ = served_graph
        resp, body = request(conn, "POST", "/query", {"graph": "burst"})
        assert resp.status == 400 and "delta" in body["error"]

    def test_bad_motif_spec_400(self, served_graph):
        conn, *_ = served_graph
        resp, body = request(
            conn, "POST", "/query",
            {"graph": "burst", "motif_spec": "A=>B", "delta": DELTA},
        )
        assert resp.status == 400 and "motif_spec" in body["error"]

    def test_deadline_maps_to_504(self, served_graph):
        conn, _, _, service = served_graph
        service.scheduler.pause()  # nothing dispatches: deadline must fire
        try:
            resp, body = request(
                conn, "POST", "/query",
                {"graph": "burst", "motif": "M1", "delta": DELTA,
                 "timeout_s": 0.05},
            )
            assert resp.status == 504
            assert "deadline" in body["error"]
        finally:
            service.scheduler.resume()

    def test_overload_maps_to_429_with_retry_after(self, served_graph):
        conn, _, fp, service = served_graph
        service.scheduler.pause()
        try:
            # Fill the (size 4) admission queue with distinct keys.
            from repro.service.query import MotifQuery

            for delta in range(1, 5):
                service.scheduler.submit(MotifQuery(fp, M1, delta))
            resp, body = request(
                conn, "POST", "/query",
                {"graph": "burst", "motif": "M1", "delta": 999},
            )
            assert resp.status == 429
            assert body["retry_after_s"] > 0
            assert int(resp.getheader("Retry-After")) >= 1
        finally:
            service.scheduler.resume()


class TestServeCLIBuilder:
    def test_build_serve_server_registers_and_binds(self, tmp_path, capsys):
        from repro.cli import _build_parser, build_serve_server
        from repro.graph.loaders import save_snap_text

        g = TemporalGraph([(0, 1, 5), (1, 2, 10), (2, 0, 20)])
        path = tmp_path / "tri.txt"
        save_snap_text(g, path)
        args = _build_parser().parse_args(
            ["serve", f"tri={path}", "--port", "0"]
        )
        service, server = build_serve_server(args)
        try:
            assert "registered 'tri'" in capsys.readouterr().out
            assert service.graphs() == {"tri": g.fingerprint()}
            assert server.server_address[1] != 0  # a real port was bound
        finally:
            server.server_close()
            service.close()

    def test_bare_path_uses_stem_as_name(self, tmp_path, capsys):
        from repro.cli import _build_parser, build_serve_server
        from repro.graph.loaders import save_snap_text

        g = TemporalGraph([(0, 1, 5), (1, 2, 10)])
        path = tmp_path / "mygraph.txt"
        save_snap_text(g, path)
        args = _build_parser().parse_args(["serve", str(path), "--port", "0"])
        service, server = build_serve_server(args)
        try:
            assert "mygraph" in service.graphs()
        finally:
            server.server_close()
            service.close()
