"""Tests for the 36-motif grid and multi-motif census."""

import pytest

from repro.graph.generators import make_dataset
from repro.mining.bruteforce import brute_force_count
from repro.mining.mackey import count_motifs
from repro.mining.multi import count_motif_family, grid_census, render_grid
from repro.motifs.grid import grid_motifs, paranjape_grid
from repro.motifs.motif import Motif


class TestGridConstruction:
    def test_exactly_36_motifs(self):
        assert len(paranjape_grid()) == 36
        assert len(grid_motifs()) == 36

    def test_all_distinct(self):
        motifs = grid_motifs()
        assert len({m.edges for m in motifs}) == 36

    def test_all_three_edges(self):
        for m in grid_motifs():
            assert m.num_edges == 3
            assert 2 <= m.num_nodes <= 3

    def test_all_connected_and_canonical(self):
        for m in grid_motifs():
            assert m.edges[0] == (0, 1)
            seen = {0, 1}
            for u, v in m.edges[1:]:
                assert u in seen or v in seen  # connected
                seen |= {u, v}

    def test_grid_keys_cover_6x6(self):
        grid = paranjape_grid()
        assert set(grid) == {(r, c) for r in range(1, 7) for c in range(1, 7)}

    def test_rows_share_first_two_edges(self):
        grid = paranjape_grid()
        for r in range(1, 7):
            prefixes = {grid[(r, c)].edges[:2] for c in range(1, 7)}
            assert len(prefixes) == 1

    def test_names(self):
        grid = paranjape_grid()
        assert grid[(1, 1)].name == "M11"
        assert grid[(6, 6)].name == "M66"

    def test_valid_motifs(self):
        for m in grid_motifs():
            assert isinstance(m, Motif)  # constructor validation ran


class TestCensus:
    @pytest.fixture(scope="class")
    def small_graph(self):
        return make_dataset("email-eu", scale=0.04, seed=9)

    def test_family_counts_match_individual(self, small_graph):
        delta = small_graph.time_span // 30
        motifs = grid_motifs()[:6]
        census = count_motif_family(small_graph, motifs, delta)
        for m in motifs:
            assert census.counts[m.name] == count_motifs(small_graph, m, delta)

    def test_family_counts_match_oracle(self, small_graph):
        delta = small_graph.time_span // 50
        motifs = grid_motifs()[::7]  # a spread of 6 motifs
        census = count_motif_family(small_graph, motifs, delta)
        for m in motifs:
            assert census.counts[m.name] == brute_force_count(
                small_graph, m, delta
            )

    def test_distribution_sums_to_one(self, small_graph):
        delta = small_graph.time_span // 20
        census = count_motif_family(small_graph, grid_motifs()[:8], delta)
        if census.total():
            assert sum(census.distribution().values()) == pytest.approx(1.0)

    def test_top(self, small_graph):
        delta = small_graph.time_span // 20
        census = count_motif_family(small_graph, grid_motifs()[:8], delta)
        top = census.top(3)
        assert len(top) == 3
        assert top[0][1] >= top[1][1] >= top[2][1]

    def test_grid_census_and_render(self, small_graph):
        delta = small_graph.time_span // 50
        census = grid_census(small_graph, delta)
        assert len(census) == 36
        out = render_grid(census)
        assert "r1" in out and "c6" in out
        assert len(out.splitlines()) == 7
