"""Tests for the context memory timing model and deepened DRAM features."""

import pytest

from repro.motifs.catalog import M1, M4
from repro.motifs.motif import Motif
from repro.sim.config import DramConfig
from repro.sim.context_memory import ContextMemoryModel
from repro.sim.dram import DramModel


class TestContextMemoryModel:
    def test_default_timing_matches_table2(self):
        """With 2-cycle accesses and 2 CAM ports the derived latencies
        equal the constants the evaluation has always used."""
        timing = ContextMemoryModel(access_cycles=2, cam_ports=2).timing(M1)
        assert timing.bookkeep_cycles == 2
        assert timing.backtrack_cycles == 2
        assert timing.dispatch_cycles == 1

    def test_single_port_serializes(self):
        two = ContextMemoryModel(access_cycles=2, cam_ports=2).timing(M1)
        one = ContextMemoryModel(access_cycles=2, cam_ports=1).timing(M1)
        assert one.bookkeep_cycles > two.bookkeep_cycles

    def test_slower_access_scales(self):
        fast = ContextMemoryModel(access_cycles=2).timing(M1)
        slow = ContextMemoryModel(access_cycles=4).timing(M1)
        assert slow.bookkeep_cycles == 2 * fast.bookkeep_cycles

    def test_validation(self):
        with pytest.raises(ValueError):
            ContextMemoryModel(access_cycles=0)
        with pytest.raises(ValueError):
            ContextMemoryModel(cam_ports=0)

    def test_cam_entries_per_motif(self):
        model = ContextMemoryModel()
        assert model.required_cam_entries(M1) == 3
        assert model.required_cam_entries(M4) == 5

    def test_storage_bits_grow_with_motif(self):
        model = ContextMemoryModel()
        path8 = Motif([(i, i + 1) for i in range(8)])
        assert model.storage_bits(path8) > model.storage_bits(M1)
        # The paper's ~178 B bound for 8-edge motifs (§IV-B).
        assert model.storage_bits(path8) <= 178 * 8

    def test_access_recording(self):
        model = ContextMemoryModel()
        model.record_bookkeep()
        model.record_backtrack()
        model.record_dispatch()
        assert model.stats.cam_searches == 4
        assert model.stats.cam_updates == 4
        assert model.stats.stack_ops == 2


class TestDramRefreshAndTurnaround:
    def test_refresh_window_stalls(self):
        cfg = DramConfig(refresh_interval_cycles=1000, refresh_cycles=100)
        d = DramModel(cfg)
        # An access landing inside the second refresh window is pushed out.
        done = d.access(0, now=1005)
        assert done >= 1100
        assert d.stats.refresh_stall_cycles > 0

    def test_no_refresh_before_first_window(self):
        cfg = DramConfig(refresh_interval_cycles=1000, refresh_cycles=100)
        d = DramModel(cfg)
        d.access(0, now=10)
        assert d.stats.refresh_stall_cycles == 0

    def test_refresh_disabled(self):
        cfg = DramConfig(refresh_interval_cycles=0)
        d = DramModel(cfg)
        d.access(0, now=1005)
        assert d.stats.refresh_stall_cycles == 0

    def test_turnaround_counted(self):
        d = DramModel(DramConfig())
        d.access(0, now=0)                      # read
        d.access(0, now=10_000, is_write=True)  # write: turnaround
        d.access(0, now=20_000, is_write=True)  # write again: none
        assert d.stats.turnaround_stalls == 1

    def test_turnaround_adds_latency(self):
        cfg = DramConfig(turnaround_cycles=50)
        a = DramModel(cfg)
        a.access(0, now=0)
        t_write = a.access(0, now=100_000, is_write=True) - 100_000
        b = DramModel(cfg)
        b.access(0, now=0, is_write=True)  # pays turnaround up front
        t_write_same = b.access(0, now=100_000, is_write=True) - 100_000
        assert t_write > t_write_same
