"""The cluster differential fixture: every dispatch mode, every engine,
one parity contract.

The repo's correctness story is a chain of byte-parity links — serial
vs pooled, pooled vs supervised, supervised vs chaos — and this module
closes the chain at cluster scale.  :func:`mine` runs one motif family
through any ``(mode, engine)`` cell of the grid

    modes   = serial | pooled | supervised | cluster
    engines = mackey | batched | comine

and returns per-motif ``(count, counters_dict)`` pairs in a single
normalized shape, so a test can assert that the *served payload bytes*
(:func:`repro.service.query.payload_bytes`) of every cell agree with
the serial Mackey reference — under no faults, and under seeded plans
that kill supervised workers (``worker.chunk``) or whole cluster nodes
(``node.chunk``) mid-run.

Fault plans only make sense for the fault-tolerant modes; passing one
with ``mode="serial"``/``"pooled"`` is a test bug and raises.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.temporal_graph import TemporalGraph
from repro.mining.mackey import MackeyMiner
from repro.motifs.motif import Motif
from repro.resilience.faults import FaultPlan
from repro.service.query import build_payload, payload_bytes

#: Dispatch modes, in deployment-ladder order.
MODES: Tuple[str, ...] = ("serial", "pooled", "supervised", "cluster")

#: Engines every mode must agree on.  ``comine`` means the shared
#: family traversal (one pass for the whole motif family); the other
#: two mine per-motif chunks.
ENGINES: Tuple[str, ...] = ("mackey", "batched", "comine")

#: One (count, counters-dict) pair per motif, the normalized result.
MotifResult = Tuple[int, Dict[str, int]]

#: Fault-injection site used by each fault-tolerant mode.
FAULT_SITES = {"supervised": "worker.chunk", "cluster": "node.chunk"}


def node_kill_plan(seed: int, num_nodes: int, kills: int) -> FaultPlan:
    """A seeded plan killing ``kills`` distinct whole nodes mid-run."""
    return FaultPlan.random_kills(seed, num_nodes, kills, site="node.chunk")


def worker_kill_plan(seed: int, num_workers: int, kills: int) -> FaultPlan:
    """A seeded plan killing ``kills`` distinct pool workers mid-run."""
    return FaultPlan.random_kills(seed, num_workers, kills)


def serial_reference(
    graph: TemporalGraph, motifs: Sequence[Motif], delta: int
) -> List[MotifResult]:
    """The parity standard: the serial Mackey miner, one motif at a time."""
    out = []
    for motif in motifs:
        r = MackeyMiner(graph, motif, delta).mine()
        out.append((r.count, r.counters.as_dict()))
    return out


def payloads(
    graph: TemporalGraph,
    motifs: Sequence[Motif],
    delta: int,
    results: Sequence[MotifResult],
) -> List[bytes]:
    """Serve-shaped payload bytes for each motif result — the exact
    bytes a service replica would emit, which is what "byte parity"
    means end to end."""
    fp = graph.fingerprint()
    return [
        payload_bytes(build_payload(fp, motif, delta, count, counters))
        for motif, (count, counters) in zip(motifs, results)
    ]


def _serial(graph, motifs, delta, engine) -> List[MotifResult]:
    if engine == "mackey":
        return serial_reference(graph, motifs, delta)
    if engine == "batched":
        from repro.mining.batched import BatchedMiner

        out = []
        for motif in motifs:
            r = BatchedMiner(graph, motif, delta).mine()
            out.append((r.count, r.counters.as_dict()))
        return out
    from repro.comine import CoMiner

    fam = CoMiner(graph, list(motifs), delta).mine()
    return [
        (fam.counts[i], fam.per_motif[i].as_dict()) for i in range(len(motifs))
    ]


def _pooled(graph, motifs, delta, engine, workers) -> List[MotifResult]:
    from repro.mining.parallel import MiningPool

    with MiningPool(graph, workers) as pool:
        if engine == "comine":
            fam = pool.count_family(list(motifs), delta)
            results = list(fam.results)
        else:
            results = pool.count_many(list(motifs), delta, engine=engine)
    return [(r.count, r.counters.as_dict()) for r in results]


def _supervised(
    graph, motifs, delta, engine, workers, fault_plan, seed
) -> List[MotifResult]:
    from repro.resilience import SupervisedMiningPool

    with SupervisedMiningPool(
        graph, workers, fault_plan=fault_plan, seed=seed,
        backoff_base_s=0.01,
    ) as pool:
        if engine == "comine":
            fam = pool.count_family(list(motifs), delta)
            results = list(fam.results)
        else:
            results = pool.count_many(list(motifs), delta, engine=engine)
    return [(r.count, r.counters.as_dict()) for r in results]


def _cluster(
    graph, motifs, delta, engine, workers, fault_plan, seed, cluster
) -> List[MotifResult]:
    from repro.cluster import MiningCluster

    if cluster is not None:
        if fault_plan is not None:
            raise ValueError("a shared cluster cannot take a fault plan")
        owned = None
    else:
        owned = cluster = MiningCluster(
            workers, fault_plan=fault_plan, seed=seed, backoff_base_s=0.01,
        )
    try:
        if engine == "comine":
            fam = cluster.count_family(graph, list(motifs), delta)
            results = list(fam.results)
        else:
            results = cluster.count_many(
                graph, list(motifs), delta, engine=engine
            )
    finally:
        if owned is not None:
            owned.close()
    return [(r.count, r.counters.as_dict()) for r in results]


def mine(
    mode: str,
    engine: str,
    graph: TemporalGraph,
    motifs: Sequence[Motif],
    delta: int,
    *,
    workers: int = 3,
    fault_plan: Optional[FaultPlan] = None,
    seed: int = 0,
    cluster=None,
) -> List[MotifResult]:
    """Run one grid cell; returns per-motif ``(count, counters_dict)``.

    ``workers`` is pool workers or cluster nodes depending on mode.
    ``fault_plan`` is shipped to the fault-tolerant modes only.  Passing
    an existing ``cluster`` reuses it for ``mode="cluster"`` (no plan
    allowed: a shared cluster's faults belong to whoever built it).
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if fault_plan is not None and mode not in FAULT_SITES:
        raise ValueError(f"mode {mode!r} cannot take a fault plan")
    if mode == "serial":
        return _serial(graph, motifs, delta, engine)
    if mode == "pooled":
        return _pooled(graph, motifs, delta, engine, workers)
    if mode == "supervised":
        return _supervised(
            graph, motifs, delta, engine, workers, fault_plan, seed
        )
    return _cluster(
        graph, motifs, delta, engine, workers, fault_plan, seed, cluster
    )
