"""Tests for temporal graph transforms."""

import pytest

from repro.graph.generators import make_dataset
from repro.graph.temporal_graph import TemporalGraph
from repro.graph.transforms import (
    compact_node_ids,
    degree_filtered,
    filter_time_range,
    induced_subgraph,
    merge,
    temporal_split,
)


@pytest.fixture
def graph():
    return make_dataset("email-eu", scale=0.05, seed=14)


class TestFiltering:
    def test_time_range(self, tiny_graph):
        sub = filter_time_range(tiny_graph, 10, 30)
        assert [e.t for e in sub.edges()] == [10, 20, 25]

    def test_induced_subgraph(self, tiny_graph):
        sub = induced_subgraph(tiny_graph, [0, 1])
        for e in sub.edges():
            assert e.src in (0, 1) and e.dst in (0, 1)
        assert sub.num_edges == 2  # the two 0->1 edges

    def test_induced_preserves_node_space(self, tiny_graph):
        sub = induced_subgraph(tiny_graph, [0, 1])
        assert sub.num_nodes == tiny_graph.num_nodes

    def test_degree_filtered(self, graph):
        capped = degree_filtered(graph, max_out_degree=5)
        for u in range(capped.num_nodes):
            deg = graph.out_degree(u)
            if deg > 5:
                assert capped.out_degree(u) == 0

    def test_degree_filtered_validation(self, graph):
        with pytest.raises(ValueError):
            degree_filtered(graph, -1)


class TestRelabeling:
    def test_compact_node_ids(self):
        g = TemporalGraph([(10, 20, 1), (20, 30, 2)])
        compacted, mapping = compact_node_ids(g)
        assert compacted.num_nodes == 3
        assert mapping == {10: 0, 20: 1, 30: 2}
        assert compacted.edge(0).src == 0

    def test_compact_preserves_counts(self, graph):
        from repro.mining.mackey import count_motifs
        from repro.motifs.catalog import M1

        compacted, _ = compact_node_ids(graph)
        delta = graph.time_span // 40
        assert count_motifs(compacted, M1, delta) == count_motifs(
            graph, M1, delta
        )


class TestSplitMerge:
    def test_split_partitions_edges(self, graph):
        train, test = temporal_split(graph, 0.7)
        assert train.num_edges + test.num_edges == graph.num_edges
        if train.num_edges and test.num_edges:
            assert train.ts[-1] <= test.ts[0]

    def test_split_validation(self, graph):
        with pytest.raises(ValueError):
            temporal_split(graph, 1.0)
        with pytest.raises(ValueError):
            temporal_split(graph, 0.0)

    def test_merge_restores_split(self, graph):
        train, test = temporal_split(graph, 0.5)
        merged = merge([train, test])
        assert merged.num_edges == graph.num_edges
        assert merged.num_nodes == graph.num_nodes
        assert [e.as_tuple() for e in merged.edges()] == [
            e.as_tuple() for e in graph.edges()
        ]

    def test_merge_empty_list(self):
        assert merge([]).num_edges == 0
