"""Tests for the markdown reproduction-report renderer."""

import pytest

from repro.analysis import experiments as ex
from repro.analysis.report import PAPER_REFERENCE, render_report
from repro.motifs.catalog import M1

TINY = ex.ScalePolicy(scale=0.04, num_pes=16, presto_samples=4)


@pytest.fixture(scope="module")
def metrics():
    return ex.run_all(TINY, datasets=("email-eu",), motifs=(M1,))


class TestRenderReport:
    def test_all_sections_present(self, metrics):
        report = render_report(metrics)
        for heading in ("Fig. 2", "Fig. 10", "Fig. 11", "Fig. 12",
                        "Fig. 13", "Fig. 14"):
            assert heading in report

    def test_paper_reference_values_shown(self, metrics):
        report = render_report(metrics)
        assert "363.1x" in report  # paper's Fig. 10/11 headline
        assert "28.3" in report  # paper's area

    def test_measured_values_shown(self, metrics):
        report = render_report(metrics)
        measured = metrics["fig10"]["geomean_speedup_memo"]
        assert f"{measured:.1f}x" in report

    def test_partial_metrics_render(self):
        report = render_report({"fig14": {"total_area_mm2": 28.3,
                                          "total_power_w": 5.07}})
        assert "Fig. 14" in report
        assert "Fig. 10" not in report

    def test_empty_metrics(self):
        assert render_report({}) == "# Reproduction report\n"

    def test_markdown_tables_valid(self, metrics):
        report = render_report(metrics)
        for line in report.splitlines():
            if line.startswith("|") and "---" not in line:
                assert line.endswith("|")

    def test_reference_constants_sane(self):
        assert PAPER_REFERENCE["fig11"]["vs Paranjape"] == 2575.9
        assert PAPER_REFERENCE["fig14"]["total_power_w"] == 5.1
