"""Tests for result persistence/diffing and ASCII charts."""

import math

import pytest

from repro.analysis.charts import bar_chart, line_chart, sparkline
from repro.analysis.persistence import (
    MetricDrift,
    PersistenceError,
    compare_runs,
    load_run,
    save_run,
)


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.json"
        metrics = {"fig10": {"geomean": 60.7, "rows": [1, 2, 3]}, "ok": True}
        save_run(path, metrics, metadata={"scale": 1.0})
        assert load_run(path) == {
            "fig10": {"geomean": 60.7, "rows": [1, 2, 3]},
            "ok": True,
        }

    def test_dataclasses_serialized(self, tmp_path):
        from dataclasses import dataclass

        @dataclass
        class Point:
            x: int
            y: float

        path = tmp_path / "run.json"
        save_run(path, {"p": Point(1, 2.5)})
        assert load_run(path) == {"p": {"x": 1, "y": 2.5}}

    def test_unserializable_rejected(self, tmp_path):
        with pytest.raises(PersistenceError):
            save_run(tmp_path / "x.json", {"bad": object()})

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{nope")
        with pytest.raises(PersistenceError):
            load_run(path)

    def test_missing_metrics_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"schema": 1}')
        with pytest.raises(PersistenceError):
            load_run(path)


class TestCompareRuns:
    def test_no_drift_within_tolerance(self):
        a = {"speedup": 60.0, "nested": {"hit": 0.99}}
        b = {"speedup": 63.0, "nested": {"hit": 0.97}}
        assert compare_runs(a, b, rel_tolerance=0.10) == []

    def test_drift_detected(self):
        drifts = compare_runs({"speedup": 60.0}, {"speedup": 30.0})
        assert len(drifts) == 1
        assert drifts[0].key == "speedup"
        assert drifts[0].ratio == pytest.approx(0.5)

    def test_missing_key_reported(self):
        drifts = compare_runs({"a": 1.0}, {"b": 1.0})
        assert {d.key for d in drifts} == {"a", "b"}

    def test_lists_flattened(self):
        drifts = compare_runs({"xs": [1.0, 2.0]}, {"xs": [1.0, 4.0]})
        assert [d.key for d in drifts] == ["xs[1]"]

    def test_non_numeric_leaves_ignored(self):
        assert compare_runs({"name": "a"}, {"name": "b"}) == []


class TestCharts:
    def test_sparkline_shape(self):
        s = sparkline([0, 1, 2, 3, 4, 5])
        assert len(s) == 6
        assert s[0] == "▁" and s[-1] == "█"

    def test_sparkline_constant(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_sparkline_downsamples(self):
        assert len(sparkline(list(range(100)), width=10)) == 10

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_bar_chart_contains_labels_and_values(self):
        out = bar_chart({"mint": 60.7, "gpu": 18.2})
        assert "mint" in out and "60.7" in out
        assert out.count("\n") == 1

    def test_bar_chart_log_scale(self):
        out = bar_chart({"a": 1.0, "b": 1000.0}, width=30, log_scale=True)
        rows = out.splitlines()
        assert rows[1].count("#") > rows[0].count("#")

    def test_bar_chart_log_requires_positive(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 0.0}, log_scale=True)

    def test_bar_chart_empty(self):
        assert bar_chart({}) == "(empty)"

    def test_line_chart_renders_series(self):
        pts = [(x, math.sin(x)) for x in range(20)]
        out = line_chart({"sin": pts}, height=6, width=30)
        lines = out.splitlines()
        assert len(lines) == 7  # grid + footer
        assert "sin" in lines[-1]
        assert any("*" in l for l in lines[:-1])

    def test_line_chart_multi_series_glyphs(self):
        out = line_chart(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]}, height=4, width=10
        )
        assert "*=a" in out and "o=b" in out

    def test_line_chart_empty(self):
        assert line_chart({}) == "(empty)"
