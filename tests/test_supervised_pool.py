"""Supervision-layer tests for :class:`SupervisedMiningPool`.

Every test here asserts the same core invariant from a different
failure angle: whatever dies, counts that do come back are
byte-identical to the serial miner (chunks are idempotent, merging is
commutative).  Fault injection is seeded, so each scenario is an
ordinary deterministic test.
"""

from __future__ import annotations

import random

import pytest

from repro.mining.mackey import MackeyMiner
from repro.mining.parallel import MiningCancelled
from repro.motifs.catalog import M1, M2
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    PoolDegraded,
    PoolFailed,
    SupervisedMiningPool,
)
from tests.conftest import random_temporal_graph

DELTA = 60
WORKERS = 3


@pytest.fixture(scope="module")
def graph():
    rng = random.Random(11)
    return random_temporal_graph(rng, 40, 700, time_range=600)


@pytest.fixture(scope="module")
def truth(graph):
    """Serial ground truth per motif: (count, counters dict)."""
    out = {}
    for motif in (M1, M2):
        r = MackeyMiner(graph, motif, DELTA).mine()
        out[motif.name] = (r.count, r.counters.as_dict())
    return out


def assert_parity(results, truth, motifs):
    for motif, result in zip(motifs, results):
        count, counters = truth[motif.name]
        assert result.count == count
        assert result.counters.as_dict() == counters


@pytest.mark.timeout(120)
class TestSupervisedPool:
    def test_fault_free_parity(self, graph, truth):
        with SupervisedMiningPool(graph, WORKERS) as pool:
            results = pool.count_many([M1, M2], DELTA)
            assert_parity(results, truth, [M1, M2])
            assert pool.stats.worker_deaths == 0
            assert pool.stats.chunks_completed > 0
            assert not pool.degraded and not pool.broken

    def test_single_worker_death_costs_one_chunk(self, graph, truth):
        events = []
        with SupervisedMiningPool(
            graph, WORKERS,
            fault_plan=FaultPlan.kill_worker(0, at_chunk=2),
            on_event=lambda name, n: events.append(name),
        ) as pool:
            results = pool.count_many([M1], DELTA)
            assert_parity(results, truth, [M1])
            assert pool.stats.worker_deaths == 1
            # The killed worker's in-flight chunk was requeued once.
            assert pool.stats.chunk_retries == 1
            assert "worker_deaths" in events and "chunk_retries" in events
            # Same pool keeps serving after the death.
            again = pool.count_many([M2], DELTA)
            assert_parity(again, truth, [M2])

    def test_wedged_worker_is_killed_and_chunk_retried(self, graph, truth):
        # Worker 0 stalls 2s on its first chunk against a 0.3s soft
        # timeout: the supervisor must presume it wedged, SIGKILL it,
        # and re-run the chunk elsewhere.
        plan = FaultPlan([
            FaultSpec("worker.chunk", "delay", at_call=1, worker=0,
                      delay_s=2.0),
        ])
        with SupervisedMiningPool(
            graph, WORKERS, chunk_timeout_s=0.3, fault_plan=plan,
        ) as pool:
            results = pool.count_many([M1], DELTA)
            assert_parity(results, truth, [M1])
            assert pool.stats.wedged_kills == 1
            assert pool.stats.chunk_retries >= 1

    def test_respawn_refills_the_pool(self, graph, truth):
        # Both original workers die, so the run can only finish on
        # respawned replacements — whose fresh ids dodge the one-shot
        # kill specs for workers 0 and 1.
        with SupervisedMiningPool(
            graph, 2,
            fault_plan=FaultPlan.kill_workers({0: 1, 1: 1}),
            backoff_base_s=0.01,
        ) as pool:
            results = pool.count_many([M1], DELTA)
            assert_parity(results, truth, [M1])
            assert pool.stats.worker_deaths == 2
            assert pool.stats.respawns >= 1
            again = pool.count_many([M1], DELTA)
            assert_parity(again, truth, [M1])
            assert pool.stats.worker_deaths == 2

    def test_budget_exhaustion_raises_pool_failed(self, graph):
        # Every fresh worker (original or respawn) dies at its first
        # chunk; with a budget of 2 respawns the pool must give up.
        with SupervisedMiningPool(
            graph, 2,
            fault_plan=FaultPlan.kill_every_worker(at_chunk=1),
            respawn_budget=2, backoff_base_s=0.01,
        ) as pool:
            with pytest.raises(PoolFailed):
                pool.count_many([M1], DELTA)
            assert pool.broken
            # A broken pool refuses further work explicitly.
            with pytest.raises(PoolFailed):
                pool.count_many([M1], DELTA)

    def test_degraded_completion_on_survivors(self, graph, truth):
        # Worker 0 dies and there is no respawn budget: the pool keeps
        # mining on the survivors and flags itself degraded.
        with SupervisedMiningPool(
            graph, WORKERS,
            fault_plan=FaultPlan.kill_worker(0, at_chunk=1),
            respawn_budget=0,
        ) as pool:
            results = pool.count_many([M1], DELTA)
            assert_parity(results, truth, [M1])
            assert pool.degraded
            assert pool.live_workers == WORKERS - 1
            assert not pool.broken  # degraded, still mining

    def test_strict_mode_raises_pool_degraded(self, graph):
        with SupervisedMiningPool(
            graph, WORKERS,
            fault_plan=FaultPlan.kill_worker(0, at_chunk=1),
            respawn_budget=0,
        ) as pool:
            with pytest.raises(PoolDegraded):
                pool.count_many([M1], DELTA, allow_degraded=False)

    def test_cancel_then_reuse(self, graph, truth):
        with SupervisedMiningPool(graph, WORKERS) as pool:
            with pytest.raises(MiningCancelled):
                pool.count_many([M1], DELTA, cancel_check=lambda: True)
            # Stale-epoch results from the cancelled run are discarded;
            # the next run is clean.
            results = pool.count_many([M1], DELTA)
            assert_parity(results, truth, [M1])

    def test_empty_inputs(self, graph):
        with SupervisedMiningPool(graph, 2) as pool:
            assert pool.count_many([], DELTA) == []
        from repro.graph.temporal_graph import TemporalGraph

        empty = TemporalGraph([])
        with SupervisedMiningPool(empty, 2) as pool:
            (r,) = pool.count_many([M1], DELTA)
            assert r.count == 0

    def test_close_guards(self, graph):
        pool = SupervisedMiningPool(graph, 2)
        pool.close()
        pool.close()  # idempotent
        assert pool.closed and pool.broken
        with pytest.raises(RuntimeError):
            pool.count_many([M1], DELTA)

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            SupervisedMiningPool(graph, 0)
        with pytest.raises(ValueError):
            SupervisedMiningPool(graph, 1, chunk_timeout_s=0.0)
