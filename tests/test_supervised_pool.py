"""Supervision-layer tests for :class:`SupervisedMiningPool`.

Every test here asserts the same core invariant from a different
failure angle: whatever dies, counts that do come back are
byte-identical to the serial miner (chunks are idempotent, merging is
commutative).  Fault injection is seeded, so each scenario is an
ordinary deterministic test.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.mining.mackey import MackeyMiner
from repro.mining.parallel import MiningCancelled
from repro.motifs.catalog import M1, M2
from repro.resilience import (
    ChunkFailed,
    FaultPlan,
    FaultSpec,
    PoolDegraded,
    PoolFailed,
    SupervisedMiningPool,
)
from tests.conftest import random_temporal_graph

DELTA = 60
WORKERS = 3


@pytest.fixture(scope="module")
def graph():
    rng = random.Random(11)
    return random_temporal_graph(rng, 40, 700, time_range=600)


@pytest.fixture(scope="module")
def truth(graph):
    """Serial ground truth per motif: (count, counters dict)."""
    out = {}
    for motif in (M1, M2):
        r = MackeyMiner(graph, motif, DELTA).mine()
        out[motif.name] = (r.count, r.counters.as_dict())
    return out


def assert_parity(results, truth, motifs):
    for motif, result in zip(motifs, results):
        count, counters = truth[motif.name]
        assert result.count == count
        assert result.counters.as_dict() == counters


@pytest.mark.timeout(120)
class TestSupervisedPool:
    def test_fault_free_parity(self, graph, truth):
        with SupervisedMiningPool(graph, WORKERS) as pool:
            results = pool.count_many([M1, M2], DELTA)
            assert_parity(results, truth, [M1, M2])
            assert pool.stats.worker_deaths == 0
            assert pool.stats.chunks_completed > 0
            assert not pool.degraded and not pool.broken

    def test_single_worker_death_costs_one_chunk(self, graph, truth):
        events = []
        with SupervisedMiningPool(
            graph, WORKERS,
            fault_plan=FaultPlan.kill_worker(0, at_chunk=2),
            on_event=lambda name, n: events.append(name),
        ) as pool:
            results = pool.count_many([M1], DELTA)
            assert_parity(results, truth, [M1])
            assert pool.stats.worker_deaths == 1
            # The killed worker's in-flight chunk was requeued once.
            assert pool.stats.chunk_retries == 1
            assert "worker_deaths" in events and "chunk_retries" in events
            # Same pool keeps serving after the death.
            again = pool.count_many([M2], DELTA)
            assert_parity(again, truth, [M2])

    def test_wedged_worker_is_killed_and_chunk_retried(self, graph, truth):
        # Worker 0 stalls 2s on its first chunk against a 0.3s soft
        # timeout: the supervisor must presume it wedged, SIGKILL it,
        # and re-run the chunk elsewhere.
        plan = FaultPlan([
            FaultSpec("worker.chunk", "delay", at_call=1, worker=0,
                      delay_s=2.0),
        ])
        with SupervisedMiningPool(
            graph, WORKERS, chunk_timeout_s=0.3, fault_plan=plan,
        ) as pool:
            results = pool.count_many([M1], DELTA)
            assert_parity(results, truth, [M1])
            assert pool.stats.wedged_kills == 1
            assert pool.stats.chunk_retries >= 1

    def test_respawn_refills_the_pool(self, graph, truth):
        # Both original workers die, so the run can only finish on
        # respawned replacements — whose fresh ids dodge the one-shot
        # kill specs for workers 0 and 1.
        with SupervisedMiningPool(
            graph, 2,
            fault_plan=FaultPlan.kill_workers({0: 1, 1: 1}),
            backoff_base_s=0.01,
        ) as pool:
            results = pool.count_many([M1], DELTA)
            assert_parity(results, truth, [M1])
            assert pool.stats.worker_deaths == 2
            assert pool.stats.respawns >= 1
            again = pool.count_many([M1], DELTA)
            assert_parity(again, truth, [M1])
            assert pool.stats.worker_deaths == 2

    def test_budget_exhaustion_raises_pool_failed(self, graph):
        # Every fresh worker (original or respawn) dies at its first
        # chunk; with a budget of 2 respawns the pool must give up.
        with SupervisedMiningPool(
            graph, 2,
            fault_plan=FaultPlan.kill_every_worker(at_chunk=1),
            respawn_budget=2, backoff_base_s=0.01,
        ) as pool:
            with pytest.raises(PoolFailed):
                pool.count_many([M1], DELTA)
            assert pool.broken
            # A broken pool refuses further work explicitly.
            with pytest.raises(PoolFailed):
                pool.count_many([M1], DELTA)

    def test_degraded_completion_on_survivors(self, graph, truth):
        # Worker 0 dies and there is no respawn budget: the pool keeps
        # mining on the survivors and flags itself degraded.
        with SupervisedMiningPool(
            graph, WORKERS,
            fault_plan=FaultPlan.kill_worker(0, at_chunk=1),
            respawn_budget=0,
        ) as pool:
            results = pool.count_many([M1], DELTA)
            assert_parity(results, truth, [M1])
            assert pool.degraded
            assert pool.live_workers == WORKERS - 1
            assert not pool.broken  # degraded, still mining

    def test_strict_mode_raises_pool_degraded(self, graph):
        with SupervisedMiningPool(
            graph, WORKERS,
            fault_plan=FaultPlan.kill_worker(0, at_chunk=1),
            respawn_budget=0,
        ) as pool:
            with pytest.raises(PoolDegraded):
                pool.count_many([M1], DELTA, allow_degraded=False)

    def test_chunk_error_retried_below_the_cap(self, graph, truth):
        # One worker whose first chunk raises: the chunk is requeued
        # and succeeds on the worker's next call — parity intact.
        with SupervisedMiningPool(
            graph, 1, fault_plan=FaultPlan.raise_at("worker.chunk", [1]),
        ) as pool:
            results = pool.count_many([M1], DELTA)
            assert_parity(results, truth, [M1])
            assert pool.stats.chunk_retries == 1
            assert pool.stats.worker_deaths == 0

    def test_deterministic_chunk_error_fails_past_the_cap(self, graph, truth):
        # With one worker, the failing chunk is requeued at the front
        # and immediately retried, so injected raises at calls 1..3 all
        # hit the same chunk: the run must fail with ChunkFailed rather
        # than requeueing forever at full CPU.
        with SupervisedMiningPool(
            graph, 1,
            fault_plan=FaultPlan.raise_at("worker.chunk", [1, 2, 3]),
            max_chunk_errors=3,
        ) as pool:
            with pytest.raises(ChunkFailed):
                pool.count_many([M1], DELTA)
            # Only the pre-cap attempts were requeued.
            assert pool.stats.chunk_retries == 2
            # A bad input is not a worker-health problem: the pool
            # stays healthy and serves the next (fault-free) run.
            assert not pool.broken
            assert pool.live_workers == 1
            results = pool.count_many([M1], DELTA)
            assert_parity(results, truth, [M1])

    def test_concurrent_count_many_is_thread_safe(self, graph, truth):
        # The service hands one cached pool to several scheduler lanes;
        # interleaved supervision loops must not mis-attribute or
        # discard each other's chunks.
        batches = [[M1], [M2], [M1, M2], [M2, M1]]
        with SupervisedMiningPool(graph, WORKERS) as pool:
            results = [None] * len(batches)
            errors = []

            def run(i: int) -> None:
                try:
                    results[i] = pool.count_many(batches[i], DELTA)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(i,))
                for i in range(len(batches))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=90)
            assert not errors
            for batch, res in zip(batches, results):
                assert res is not None
                assert_parity(res, truth, batch)

    def test_cancel_while_waiting_for_the_pool_lock(self, graph):
        # A lane whose deadline expires while another lane holds the
        # pool must abandon the wait, not block until its turn.
        with SupervisedMiningPool(graph, 2) as pool:
            with pool._mine_lock:
                with pytest.raises(MiningCancelled):
                    pool.count_many([M1], DELTA, cancel_check=lambda: True)

    def test_cancel_during_respawn_backoff(self, graph):
        # All workers dead, budget remaining, long backoff: a cancelled
        # batch must stop blocking its lane immediately instead of
        # sleeping out the whole backoff delay.
        with SupervisedMiningPool(
            graph, 1,
            fault_plan=FaultPlan.kill_every_worker(at_chunk=1),
            respawn_budget=5, backoff_base_s=30.0, backoff_cap_s=30.0,
        ) as pool:
            start = time.monotonic()
            with pytest.raises(MiningCancelled):
                pool.count_many(
                    [M1], DELTA,
                    cancel_check=lambda: pool.stats.worker_deaths >= 1,
                )
            # Backoff is >= 15s even at minimum jitter; a cancel-aware
            # wait returns within a tick of the death.
            assert time.monotonic() - start < 10.0

    def test_cancel_then_reuse(self, graph, truth):
        with SupervisedMiningPool(graph, WORKERS) as pool:
            with pytest.raises(MiningCancelled):
                pool.count_many([M1], DELTA, cancel_check=lambda: True)
            # Stale-epoch results from the cancelled run are discarded;
            # the next run is clean.
            results = pool.count_many([M1], DELTA)
            assert_parity(results, truth, [M1])

    def test_empty_inputs(self, graph):
        with SupervisedMiningPool(graph, 2) as pool:
            assert pool.count_many([], DELTA) == []
        from repro.graph.temporal_graph import TemporalGraph

        empty = TemporalGraph([])
        with SupervisedMiningPool(empty, 2) as pool:
            (r,) = pool.count_many([M1], DELTA)
            assert r.count == 0

    def test_close_guards(self, graph):
        pool = SupervisedMiningPool(graph, 2)
        pool.close()
        pool.close()  # idempotent
        assert pool.closed and pool.broken
        with pytest.raises(RuntimeError):
            pool.count_many([M1], DELTA)

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            SupervisedMiningPool(graph, 0)
        with pytest.raises(ValueError):
            SupervisedMiningPool(graph, 1, chunk_timeout_s=0.0)


class _FakeClock:
    """Deterministic time source: ``sleep`` advances ``clock`` instantly."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps = []

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


@pytest.mark.timeout(120)
class TestInjectableClock:
    """The respawn budget's timing runs entirely on the injected
    clock/sleep — the same treatment the breaker already had — so
    backoff behavior is testable without sleeping real seconds."""

    def test_backoff_schedule_is_capped_exponential_with_jitter(self, graph):
        pool = SupervisedMiningPool(
            graph, 1, backoff_base_s=0.1, backoff_cap_s=0.8, seed=3
        )
        try:
            delays = []
            for consecutive in range(6):
                pool._consecutive_respawns = consecutive
                delays.append(pool._backoff_delay())
            for consecutive, delay in enumerate(delays):
                base = min(0.8, 0.1 * (2 ** consecutive))
                assert 0.5 * base <= delay < 1.5 * base
            # The cap binds from 2^3 on: bases are 0.1 0.2 0.4 0.8 0.8...
            assert delays[4] < 1.5 * 0.8 and delays[5] < 1.5 * 0.8
        finally:
            pool.close()

    def test_sole_worker_death_respawns_on_fake_time(self, graph, truth):
        """One worker, killed mid-run, with a 60 s backoff base that
        would stall the suite in real time: the fake clock absorbs the
        whole backoff, the worker respawns, and parity holds."""
        fake = _FakeClock()
        with SupervisedMiningPool(
            graph,
            1,
            fault_plan=FaultPlan.kill_worker(0, at_chunk=2),
            respawn_budget=50,
            backoff_base_s=60.0,
            backoff_cap_s=120.0,
            clock=fake.clock,
            sleep=fake.sleep,
        ) as pool:
            results = pool.count_many([M1], DELTA, chunks_per_worker=2)
            assert_parity(results, truth, [M1])
            assert pool.stats.worker_deaths >= 1
            assert pool.stats.respawns >= 1
        assert fake.now >= 30.0  # the backoff elapsed on fake time only
        assert fake.sleeps

    def test_budget_exhaustion_on_fake_time(self, graph):
        """Every respawned worker dies instantly; the budget burns down
        and PoolFailed surfaces without any real backoff waiting."""
        fake = _FakeClock()
        with SupervisedMiningPool(
            graph,
            1,
            fault_plan=FaultPlan.kill_every_worker(at_chunk=1),
            respawn_budget=2,
            backoff_base_s=60.0,
            backoff_cap_s=120.0,
            clock=fake.clock,
            sleep=fake.sleep,
        ) as pool:
            with pytest.raises(PoolFailed):
                pool.count_many([M1], DELTA)
            assert pool.stats.respawns == 2
            assert pool.stats.worker_deaths == 3  # initial + both respawns
        assert fake.sleeps
