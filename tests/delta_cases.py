"""δ-boundary adversarial cases shared by the batch property suite
(``test_property.py``) and the streaming differential suite
(``test_streaming_parity.py``).

Each case is a concrete ``(edges, motif, delta, expected)`` quadruple
exercising the exact semantics of §II-A that off-by-one bugs hit first:

- the window constraint is **inclusive** (``t_l - t_1 <= δ``): a match
  whose span is exactly δ counts, one second wider does not;
- duplicate raw timestamps at the window edge are uniquified by the
  deterministic nudge (``t' = max(t, prev' + 1)``), which can push the
  last edge of a would-be match just past the window;
- self-loop graph edges never participate in a match (motif edges are
  never self-loops), in any position — root, middle, or final edge.

``expected`` is the hand-derived count; every miner — Mackey,
brute-force, task-centric, the streaming engine, the shared-traversal
co-miner, and the batched frontier engine — must report it
*identically*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.graph.temporal_graph import TemporalGraph
from repro.mining.bruteforce import brute_force_count
from repro.mining.mackey import count_motifs
from repro.mining.taskcentric import TaskCentricMiner
from repro.motifs.catalog import M1, M2, PATH3, PING_PONG
from repro.motifs.motif import Motif
from repro.streaming.counter import stream_count


@dataclass(frozen=True)
class DeltaCase:
    name: str
    edges: Tuple[Tuple[int, int, int], ...]
    motif: Motif
    delta: int
    expected: int

    def graph(self) -> TemporalGraph:
        return TemporalGraph(self.edges)


DELTA_BOUNDARY_CASES: List[DeltaCase] = [
    # -- exact-span matches: t_l - t_1 == δ is IN the window ------------------
    DeltaCase(
        name="m1-span-exactly-delta",
        edges=((0, 1, 0), (1, 2, 50), (2, 0, 100)),
        motif=M1,
        delta=100,
        expected=1,
    ),
    DeltaCase(
        name="m1-span-delta-plus-one",
        edges=((0, 1, 0), (1, 2, 50), (2, 0, 101)),
        motif=M1,
        delta=100,
        expected=0,
    ),
    DeltaCase(
        name="pingpong-span-exactly-delta",
        edges=((3, 4, 10), (4, 3, 17)),
        motif=PING_PONG,
        delta=7,
        expected=1,
    ),
    DeltaCase(
        name="pingpong-zero-delta-strict-times",
        # δ=0 can never hold a 2-edge match: uniquified times are strict.
        edges=((3, 4, 10), (4, 3, 10)),
        motif=PING_PONG,
        delta=0,
        expected=0,
    ),
    DeltaCase(
        name="path3-two-windows-one-exact",
        # First chain spans exactly δ (counts); the second, started one
        # second later, spans δ+1 (does not).
        edges=(
            (0, 1, 0), (1, 2, 30), (2, 3, 60),
            (4, 5, 100), (5, 6, 130), (6, 7, 161),
        ),
        motif=PATH3,
        delta=60,
        expected=1,
    ),
    # -- duplicate timestamps at the window edge ------------------------------
    DeltaCase(
        name="duplicate-ts-nudge-closes-window",
        # Raw edges: A->B@0, B->C@100, C->A@100.  The nudge makes the
        # last edge t=101, pushing the cycle's span to δ+1 → no match.
        edges=((0, 1, 0), (1, 2, 100), (2, 0, 100)),
        motif=M1,
        delta=100,
        expected=0,
    ),
    DeltaCase(
        name="duplicate-ts-nudge-still-inside",
        # Same shape with δ=101: the nudged span is exactly δ → match.
        edges=((0, 1, 0), (1, 2, 100), (2, 0, 100)),
        motif=M1,
        delta=101,
        expected=1,
    ),
    DeltaCase(
        name="duplicate-ts-burst-all-equal",
        # Four simultaneous raw edges uniquify to t=5,6,7,8; every
        # adjacent-in-time reversal pairs up (the A/B roles swap freely),
        # and the span-3 pair (t=5, t=8) still fits the window.
        edges=((0, 1, 5), (1, 0, 5), (0, 1, 5), (1, 0, 5)),
        motif=PING_PONG,
        delta=3,
        expected=4,
    ),
    DeltaCase(
        name="exact-boundary-edge-extends",
        # The closing edge sits at t == t_root + δ precisely: inclusive
        # window, so it extends (shared predicate in repro.graph.window).
        edges=((0, 1, 0), (1, 0, 100)),
        motif=PING_PONG,
        delta=100,
        expected=1,
    ),
    DeltaCase(
        name="exact-boundary-two-candidates",
        # Two closing candidates straddle the bound: t=100 is exactly
        # t_root + δ (in), t=101 one past it (out).  A scan must take
        # the first and stop at the second.
        edges=((0, 1, 0), (1, 0, 100), (1, 0, 101)),
        motif=PING_PONG,
        delta=100,
        expected=1,
    ),
    DeltaCase(
        name="duplicate-ts-at-boundary-splits",
        # Two raw duplicates AT the boundary uniquify to t=100 (exactly
        # δ, in) and t=101 (δ+1, out): the nudge decides each one's fate
        # independently and identically for every engine.
        edges=((0, 1, 0), (1, 0, 100), (1, 0, 100)),
        motif=PING_PONG,
        delta=100,
        expected=1,
    ),
    DeltaCase(
        name="duplicate-ts-at-boundary-both-inside",
        # Same duplicates with δ=101: both nudged copies fit; each
        # closes its own match against the root.
        edges=((0, 1, 0), (1, 0, 100), (1, 0, 100)),
        motif=PING_PONG,
        delta=101,
        expected=2,
    ),
    DeltaCase(
        name="m2-closing-edge-exactly-at-boundary",
        # 3-edge feed-forward triangle whose *bound-endpoint* closing
        # edge (A->C with both ends mapped) lands exactly on t_root + δ.
        edges=((0, 1, 0), (1, 2, 40), (0, 2, 100)),
        motif=M2,
        delta=100,
        expected=1,
    ),
    # -- self-loop-free invariants --------------------------------------------
    DeltaCase(
        name="self-loop-never-roots",
        edges=((0, 0, 0), (0, 1, 10), (1, 2, 20), (2, 0, 30)),
        motif=M1,
        delta=100,
        expected=1,
    ),
    DeltaCase(
        name="self-loop-never-extends",
        # The loop at B sits mid-window but no motif edge may take it.
        edges=((0, 1, 0), (1, 1, 5), (1, 2, 10), (2, 0, 20)),
        motif=M1,
        delta=100,
        expected=1,
    ),
    DeltaCase(
        name="self-loop-only-graph",
        edges=((0, 0, 0), (1, 1, 5), (2, 2, 10)),
        motif=M2,
        delta=100,
        expected=0,
    ),
]


def mackey_count(graph: TemporalGraph, motif: Motif, delta: int) -> int:
    return count_motifs(graph, motif, delta)


def bruteforce_count(graph: TemporalGraph, motif: Motif, delta: int) -> int:
    return brute_force_count(graph, motif, delta)


def taskcentric_count(graph: TemporalGraph, motif: Motif, delta: int) -> int:
    return TaskCentricMiner(graph, motif, delta, num_workers=3).mine().count


def streaming_count(graph: TemporalGraph, motif: Motif, delta: int) -> int:
    return stream_count(graph, motif, delta)


def comine_count(graph: TemporalGraph, motif: Motif, delta: int) -> int:
    """The shared-traversal co-miner, run as a family of one."""
    from repro.comine import CoMiner

    return CoMiner(graph, [motif], delta).mine().counts[0]


def batched_count(graph: TemporalGraph, motif: Motif, delta: int) -> int:
    """The vectorized frontier-expansion engine."""
    from repro.mining.batched import count_motifs_batched

    return count_motifs_batched(graph, motif, delta)


_SHARED_CLUSTER = None


def _shared_cluster():
    """A lazily-started 2-node mining cluster, shared by every case.

    Spinning up node processes per case would dominate the suite's
    runtime; residency is per-fingerprint, so all the tiny case graphs
    coexist on one cluster.  Closed at interpreter exit.
    """
    global _SHARED_CLUSTER
    if _SHARED_CLUSTER is None:
        import atexit

        from repro.cluster import MiningCluster

        _SHARED_CLUSTER = MiningCluster(2)
        atexit.register(_SHARED_CLUSTER.close)
    return _SHARED_CLUSTER


def cluster_count(graph: TemporalGraph, motif: Motif, delta: int) -> int:
    """Sharded dispatch across worker nodes (repro.cluster)."""
    return _shared_cluster().count(graph, motif, delta).count


#: name -> count(graph, motif, delta); every backend must agree on every
#: case above (and anywhere else the suites cross-check them).
COUNT_BACKENDS = {
    "mackey": mackey_count,
    "bruteforce": bruteforce_count,
    "taskcentric": taskcentric_count,
    "streaming": streaming_count,
    "comine": comine_count,
    "batched": batched_count,
}

#: COUNT_BACKENDS plus dispatch layers that cost real processes to
#: stand up.  Used where each case runs once (the boundary-case
#: parametrization), NOT inside hypothesis loops — a property run would
#: pay the cluster socket round-trips hundreds of times.
EXTENDED_COUNT_BACKENDS = dict(COUNT_BACKENDS, cluster=cluster_count)
