"""repro.live ingestion: reorder buffer, versioning, idempotency, and
the (fingerprint, version) registry/cache consistency contract."""

import threading

import pytest

from repro.graph.generators import make_dataset
from repro.live.ingest import LiveGraph, ReorderBuffer
from repro.mining.mackey import MackeyMiner
from repro.service.query import UnknownGraph
from repro.service.service import MotifService


def edges_of(graph):
    return list(zip(graph.src.tolist(), graph.dst.tolist(), graph.ts.tolist()))


class TestReorderBuffer:
    def test_pass_through_sorts_within_batch(self):
        buf = ReorderBuffer(lateness=0, capacity=8)
        for s, d, t in [(0, 1, 30), (1, 2, 10), (2, 3, 20)]:
            assert buf.offer(s, d, t)
        assert buf.release_ready() == [(1, 2, 10), (2, 3, 20), (0, 1, 30)]
        assert buf.pending == 0

    def test_lateness_window_holds_recent_edges(self):
        buf = ReorderBuffer(lateness=5, capacity=100)
        buf.offer(0, 1, 10)
        assert buf.release_ready() == []  # watermark 10-5 < 10
        buf.offer(0, 1, 16)
        assert buf.release_ready() == [(0, 1, 10)]  # watermark 11 passed it
        assert buf.pending == 1
        assert buf.flush() == [(0, 1, 16)]

    def test_late_edge_dropped_and_counted(self):
        buf = ReorderBuffer(lateness=0, capacity=8)
        buf.offer(0, 1, 100)
        buf.release_ready()
        assert not buf.offer(9, 9, 50)  # below last released timestamp
        assert buf.late_dropped == 1
        assert buf.stats()["late_dropped"] == 1

    def test_capacity_overflow_force_releases_smallest(self):
        buf = ReorderBuffer(lateness=None, capacity=2)
        buf.offer(0, 1, 30)
        buf.offer(0, 1, 10)
        assert buf.release_ready() == []  # within capacity, no watermark
        buf.offer(0, 1, 20)
        assert buf.release_ready() == [(0, 1, 10)]  # overflow pops the min

    def test_ties_release_in_arrival_order(self):
        buf = ReorderBuffer(lateness=0, capacity=8)
        buf.offer(7, 8, 5)
        buf.offer(1, 2, 5)
        assert buf.release_ready() == [(7, 8, 5), (1, 2, 5)]

    def test_none_lateness_only_flush_releases(self):
        buf = ReorderBuffer(lateness=None, capacity=100)
        for t in (3, 1, 2):
            buf.offer(0, 1, t)
        assert buf.release_ready() == []
        assert [e[2] for e in buf.flush()] == [1, 2, 3]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ReorderBuffer(capacity=0)
        with pytest.raises(ValueError):
            ReorderBuffer(lateness=-1)


class TestLiveGraph:
    def test_version_bumps_only_when_edges_land(self):
        live = LiveGraph("g", delta=10, lateness=5)
        ack = live.append_batch([(0, 1, 100)], seq=1)
        assert ack["released"] == 0 and ack["version"] == 0  # still buffered
        ack = live.append_batch([(1, 2, 110)], seq=2)
        assert ack["released"] == 1 and ack["version"] == 1
        ack = live.append_batch([], seq=3, flush=True)
        assert ack["released"] == 1 and ack["version"] == 2

    def test_batch_validation_is_atomic(self):
        live = LiveGraph("g", delta=10)
        with pytest.raises(ValueError):
            live.append_batch([(0, 1, 5), (-1, 2, 6)], seq=1)
        assert live.buffer.num_edges == 0
        assert live.version == 0
        # The failed batch did not consume its sequence number.
        ack = live.append_batch([(0, 1, 5)], seq=1)
        assert not ack["duplicate"] and ack["released"] == 1

    def test_malformed_edges_rejected(self):
        live = LiveGraph("g", delta=10)
        for bad in [[(1,)], [("a", "b")], [(0, 1, "x", 9)], [None]]:
            with pytest.raises(ValueError):
                live.append_batch(bad, seq=1)

    def test_duplicate_seq_returns_original_ack(self):
        live = LiveGraph("g", delta=10)
        first = live.append_batch([(0, 1, 5), (1, 2, 6)], seq=9)
        again = live.append_batch([(0, 1, 5), (1, 2, 6)], seq=9)
        assert not first["duplicate"] and again["duplicate"]
        assert again["version"] == first["version"]
        assert again["released"] == first["released"]
        assert live.buffer.num_edges == 2  # applied exactly once

    def test_auto_seq_skips_explicitly_used_numbers(self):
        live = LiveGraph("g", delta=10)
        live.append_batch([(0, 1, 5)], seq=1)
        ack = live.append_batch([(1, 2, 6)])  # auto seq must not collide
        assert ack["seq"] != 1 and not ack["duplicate"]

    def test_snapshot_matches_offline_construction(self):
        g = make_dataset("email-eu", scale=0.03, seed=1)
        live = LiveGraph("g", delta=int(g.time_span // 10))
        live.append_batch(edges_of(g), seq=0)
        assert live.snapshot().fingerprint() == g.fingerprint()


class TestVersionedServing:
    """Satellite: registry/cache must never mix versions mid-ingest."""

    DELTA_DIV = 20

    @pytest.fixture()
    def feed(self):
        g = make_dataset("email-eu", scale=0.04, seed=3)
        delta = max(1, g.time_span // self.DELTA_DIV)
        with MotifService(max_queue=16) as svc:
            svc.create_live_graph("feed", delta)
            yield svc, edges_of(g), delta

    def test_query_sees_exactly_one_version(self, feed):
        svc, edges, delta = feed
        half = len(edges) // 2
        svc.append_live("feed", edges[:half], seq=0)
        q1 = svc.query("feed", "M2", delta)
        svc.append_live("feed", edges[half:], seq=1)
        q2 = svc.query("feed", "M2", delta)

        fp1, fp2 = q1.payload["graph"], q2.payload["graph"]
        assert fp1 != fp2
        # Each answer equals serial mining of exactly that version's
        # snapshot — counts from a mix of versions cannot satisfy both.
        for fp, q in ((fp1, q1), (fp2, q2)):
            snap = svc.registry.get(fp)
            serial = MackeyMiner(snap, svc._resolve_motif("M2"), delta).mine()
            assert q.payload["count"] == serial.count

    def test_mid_ingest_queries_never_mix_versions(self, feed):
        svc, edges, delta = feed
        motif = svc._resolve_motif("M2")
        stop = threading.Event()
        errors = []

        def ingest():
            try:
                for i in range(0, len(edges), 10):
                    if stop.is_set():
                        return
                    svc.append_live("feed", edges[i:i + 10], seq=i)
            except Exception as exc:  # pragma: no cover - fail the test
                errors.append(exc)

        t = threading.Thread(target=ingest)
        t.start()
        try:
            for _ in range(6):
                q = svc.query("feed", "M2", delta)
                snap = svc.registry.get(q.payload["graph"])
                serial = MackeyMiner(snap, motif, delta).mine()
                # Snapshot-consistency: the served count is the count of
                # the one snapshot the query's fingerprint names.
                assert q.payload["count"] == serial.count
        finally:
            stop.set()
            t.join()
        assert not errors

    def test_cache_hit_on_unchanged_version_and_miss_after(self, feed):
        svc, edges, delta = feed
        svc.append_live("feed", edges[:80], seq=0)
        first = svc.query("feed", "M1", delta)
        repeat = svc.query("feed", "M1", delta)
        assert repeat.source == "cache"
        assert repeat.payload == first.payload
        svc.append_live("feed", edges[80:], seq=1)
        fresh = svc.query("feed", "M1", delta)
        assert fresh.source != "cache"
        assert fresh.payload["graph"] != first.payload["graph"]

    def test_superseded_versions_invalidated_incrementally(self, feed):
        svc, edges, delta = feed
        cache = svc.cache
        third = max(1, len(edges) // 3)
        fps = []
        for i in range(3):
            svc.append_live("feed", edges[i * third:(i + 1) * third], seq=i)
            q = svc.query("feed", "M2", delta)
            fps.append(q.payload["graph"])
        # keep_versions=2: version 1's binding is gone and its pin is
        # dropped (idle, eviction-eligible); the two newest stay pinned.
        assert cache.version_fingerprint("feed", 1) is None
        assert svc.registry.refcount(fps[0]) == 0
        for version, fp in ((2, fps[1]), (3, fps[2])):
            assert cache.version_fingerprint("feed", version) == fp
            assert svc.registry.refcount(fp) > 0
        # Other graphs' cache entries survive (not a wholesale clear).
        assert svc.query("feed", "M2", delta).source == "cache"

    def test_registry_version_of_tracks_head(self, feed):
        svc, edges, delta = feed
        svc.append_live("feed", edges[:50], seq=0)
        svc.query("feed", "M1", delta)
        v1 = svc.registry.version_of("feed")
        assert v1 is not None and v1[0] == 1
        assert svc.registry.resolve("feed") == v1[1]
        svc.append_live("feed", edges[50:100], seq=1)
        svc.query("feed", "M1", delta)
        v2 = svc.registry.version_of("feed")
        assert v2 is not None and v2[0] == 2 and v2[1] != v1[1]

    def test_drop_live_graph_releases_everything(self, feed):
        svc, edges, delta = feed
        svc.append_live("feed", edges[:50], seq=0)
        svc.query("feed", "M1", delta)
        svc.drop_live_graph("feed")
        assert "feed" not in svc.live_graphs()
        assert svc.cache.version_fingerprint("feed", 1) is None
        with pytest.raises(UnknownGraph):
            svc.live_status("feed")

    def test_live_name_collision_rejected(self, feed):
        svc, _, delta = feed
        with pytest.raises(ValueError):
            svc.create_live_graph("feed", delta)
