"""Unit tests for motif representation and the evaluation catalog."""

import pytest

from repro.motifs.catalog import (
    EVALUATION_MOTIFS,
    EXTRA_MOTIFS,
    M1,
    M2,
    M3,
    M4,
    PAPER_DELTA_SECONDS,
    motif_by_name,
)
from repro.motifs.motif import MAX_MOTIF_EDGES, Motif


class TestMotifValidation:
    def test_basic_motif(self):
        m = Motif([(0, 1), (1, 2)])
        assert m.num_edges == 2
        assert m.num_nodes == 3

    def test_empty_motif_rejected(self):
        with pytest.raises(ValueError):
            Motif([])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Motif([(0, 0)])

    def test_non_contiguous_labels_rejected(self):
        with pytest.raises(ValueError, match="contiguous"):
            Motif([(0, 2)])

    def test_too_many_edges_rejected(self):
        edges = [(i % 2, 1 - i % 2) for i in range(MAX_MOTIF_EDGES + 1)]
        with pytest.raises(ValueError, match="at most"):
            Motif(edges)

    def test_eight_edges_allowed(self):
        edges = [(0, 1), (1, 0)] * 4
        assert Motif(edges).num_edges == 8

    def test_from_labels_order(self):
        m = Motif.from_labels([("B", "A"), ("A", "C")])
        # B appears first so it becomes node 0.
        assert m.edges == ((0, 1), (1, 2))

    def test_repr_contains_name(self):
        assert "M1" in repr(M1)

    def test_edges_are_immutable_tuple(self):
        assert isinstance(M1.edges, tuple)


class TestMotifProperties:
    def test_static_pattern_dedup(self):
        m = Motif.from_labels([("A", "B"), ("B", "A"), ("A", "B")])
        assert m.static_pattern() == {(0, 1), (1, 0)}

    def test_cyclic_detection(self):
        assert M1.is_cyclic()
        assert M3.is_cyclic()
        assert not M2.is_cyclic()
        assert not M4.is_cyclic()

    def test_edge_accessor(self):
        assert M1.edge(0) == (0, 1)
        assert M1.edge(2) == (2, 0)

    def test_len(self):
        assert len(M4) == 4


class TestCatalog:
    def test_paper_delta(self):
        assert PAPER_DELTA_SECONDS == 3600

    def test_m1_is_three_node_cycle(self):
        assert M1.num_nodes == 3
        assert M1.num_edges == 3
        assert M1.is_cyclic()

    def test_m2_is_three_node_feedforward(self):
        assert M2.num_nodes == 3
        assert M2.num_edges == 3

    def test_m3_is_four_node_cycle(self):
        assert M3.num_nodes == 4
        assert M3.num_edges == 4
        assert M3.is_cyclic()

    def test_m4_is_five_node_star(self):
        assert M4.num_nodes == 5
        assert M4.num_edges == 4
        sources = {u for u, _ in M4.edges}
        assert sources == {0}

    def test_sizes_match_paper_claim(self):
        # "four unique motifs (M1-M4) from three to five nodes in size"
        sizes = [m.num_nodes for m in EVALUATION_MOTIFS]
        assert min(sizes) == 3
        assert max(sizes) == 5

    def test_lookup_by_name(self):
        for m in EVALUATION_MOTIFS + EXTRA_MOTIFS:
            assert motif_by_name(m.name) is m

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            motif_by_name("M99")
