"""Eviction semantics and memory bounds of the continuation tables.

A partial match rooted at an edge older than ``t_now - δ`` has
``t_limit < t_now`` and can never again be extended (timestamps are
strictly increasing).  The engine must *drop* such partials — not merely
skip them — so continuation-table memory stays proportional to the live
window, even on hub-heavy streams.
"""

from __future__ import annotations

import pytest

from repro.graph.generators import make_dataset
from repro.motifs.catalog import M1, PING_PONG, TWO_CYCLE_RETURN
from repro.streaming import StreamingCounter, iter_batches
from repro.streaming.counter import MotifStreamEngine


class TestEvictionSemantics:
    def test_expired_partial_is_dropped(self):
        engine = MotifStreamEngine(PING_PONG, delta=10)
        engine.advance(0, 1, 0)  # roots a partial, t_limit=10
        assert engine.live_partials == 1
        engine.advance(2, 3, 100)  # far outside the window
        # The stale partial is gone (the new root replaces it).
        assert engine.evicted_total == 1
        assert engine.live_partials == 1
        assert all(p.t_limit >= 100 for p in engine.iter_partials())

    def test_expired_partial_never_re_extended(self):
        # 2cycle-return = A->B, B->A, A->B.  Build a depth-2 partial,
        # expire it, then send the exact edge that would have completed
        # it: the count must stay 0.
        engine = MotifStreamEngine(TWO_CYCLE_RETURN, delta=5)
        engine.advance(0, 1, 0)
        engine.advance(1, 0, 3)  # depth-2 partial now waits for (0, 1)
        assert engine.live_partials >= 1
        assert engine.advance(0, 1, 20) == 0  # would complete if stale
        assert engine.count == 0
        # A fresh in-window sequence still completes normally.
        engine.advance(1, 0, 22)
        engine.advance(0, 1, 24)
        assert engine.count == 1

    def test_eviction_is_exact_at_the_boundary(self):
        # t_limit == t is still extendable (inclusive window); one past
        # is not.
        inside = MotifStreamEngine(PING_PONG, delta=7)
        inside.advance(3, 4, 10)
        inside.advance(4, 3, 17)  # span exactly δ
        assert inside.count == 1

        outside = MotifStreamEngine(PING_PONG, delta=7)
        outside.advance(3, 4, 10)
        outside.advance(4, 3, 18)  # span δ+1: evicted, not matched
        assert outside.count == 0
        assert outside.evicted_total == 1

    def test_zero_delta_evicts_everything(self):
        engine = MotifStreamEngine(M1, delta=0)
        for i, (s, d) in enumerate([(0, 1), (1, 2), (2, 0)]):
            engine.advance(s, d, i)
        assert engine.count == 0
        # Only the newest root can be live at δ=0.
        assert engine.live_partials <= 1


class TestMemoryBounds:
    def test_table_bounded_by_live_window_on_hub_heavy_stream(self):
        """On the hub-heavy wiki-talk generator, the continuation tables
        never exceed what the live window can justify: every stored
        partial is rooted inside the window, and for a 3-edge motif the
        partial count is bounded by window pairs."""
        g = make_dataset("wiki-talk", scale=0.05, seed=23)
        delta = max(1, g.time_span // 25)
        counter = StreamingCounter(M1, delta)
        for batch in iter_batches(g, 32):
            counter.add_batch(batch)
            t_now = counter.buffer.t_now
            w = counter.window_size
            engine = counter.engines()[0]
            # Heap and buckets agree (no leaked entries).
            assert engine.live_partials == sum(
                1 for _ in engine.iter_partials()
            )
            # Every live partial is rooted inside the window...
            for p in engine.iter_partials():
                assert p.t_limit >= t_now
                assert p.root_time >= t_now - delta
            # ...so depth-1 partials are at most the window edges and
            # depth-2 partials at most ordered window pairs.
            assert engine.live_partials <= w + w * w
        assert counter.evicted_partials > 0, "stream never evicted"
        assert counter.count > 0, "stream never matched (weak test)"

    def test_peak_live_partials_far_below_total_partials_created(self):
        g = make_dataset("wiki-talk", scale=0.05, seed=23)
        delta = max(1, g.time_span // 25)
        counter = StreamingCounter(M1, delta)
        counter.add_batch(
            zip(g.src.tolist(), g.dst.tolist(), g.ts.tolist())
        )
        created = counter.evicted_partials + counter.live_partials
        # Eviction keeps the resident set a small fraction of all
        # partials ever created on a long bursty stream.
        assert counter.peak_live_partials < created / 2

    def test_window_ring_tracks_delta(self):
        counter = StreamingCounter(M1, delta=10)
        for t in range(0, 100, 5):
            counter.add_edge(t % 3, (t + 1) % 3, t)
            for idx in counter.buffer.window_indices():
                assert (
                    counter.buffer.snapshot().ts[idx]
                    >= counter.buffer.t_now - 10
                )
        assert counter.buffer.window_size == 3  # t, t-5, t-10 inclusive
