"""Tests for the accelerator's graph memory layout."""

import pytest

from repro.graph.temporal_graph import TemporalGraph
from repro.sim.layout import (
    EDGE_RECORD_BYTES,
    GraphMemoryLayout,
    INDEX_BYTES,
    MEMO_ENTRY_BYTES,
)


@pytest.fixture
def layout(burst_graph):
    return GraphMemoryLayout.for_graph(burst_graph)


class TestRegions:
    def test_regions_are_line_aligned(self, layout):
        lb = layout.line_bytes
        for base in (
            layout.edges_base,
            layout.out_offsets_base,
            layout.out_index_base,
            layout.in_offsets_base,
            layout.in_index_base,
            layout.memo_out_base,
            layout.memo_in_base,
        ):
            assert base % lb == 0

    def test_regions_do_not_overlap(self, layout, burst_graph):
        m, n = burst_graph.num_edges, burst_graph.num_nodes
        spans = [
            (layout.edges_base, m * EDGE_RECORD_BYTES),
            (layout.out_offsets_base, (n + 1) * 4),
            (layout.out_index_base, m * INDEX_BYTES),
            (layout.in_offsets_base, (n + 1) * 4),
            (layout.in_index_base, m * INDEX_BYTES),
            (layout.memo_out_base, n * MEMO_ENTRY_BYTES),
            (layout.memo_in_base, n * MEMO_ENTRY_BYTES),
        ]
        spans.sort()
        for (b1, s1), (b2, _) in zip(spans, spans[1:]):
            assert b1 + s1 <= b2

    def test_total_bytes_covers_all(self, layout, burst_graph):
        n = burst_graph.num_nodes
        assert layout.total_bytes >= layout.memo_in_base + n * MEMO_ENTRY_BYTES


class TestAddressing:
    def test_edge_record_stride(self, layout):
        assert layout.edge_record(3) - layout.edge_record(2) == EDGE_RECORD_BYTES

    def test_offsets_address(self, layout):
        assert layout.offsets(0, "out") == layout.out_offsets_base
        assert layout.offsets(2, "in") == layout.in_offsets_base + 8

    def test_index_entry_addresses(self, layout):
        assert layout.index_entry(0, "out") == layout.out_index_base
        assert layout.index_entry(5, "in") == layout.in_index_base + 20

    def test_memo_entry_addresses(self, layout):
        assert layout.memo_entry(1, "out") == layout.memo_out_base + 4
        assert layout.memo_entry(1, "in") == layout.memo_in_base + 4

    def test_line_computation(self, layout):
        assert layout.line(0) == 0
        assert layout.line(63) == 0
        assert layout.line(64) == 1

    def test_lines_touched(self, layout):
        assert list(layout.lines_touched(0, 64)) == [0]
        assert list(layout.lines_touched(60, 8)) == [0, 1]
        assert list(layout.lines_touched(128, 1)) == [2]
        assert list(layout.lines_touched(0, 0)) == [0]


class TestEmptyGraph:
    def test_empty_graph_layout(self):
        g = TemporalGraph([], num_nodes=2)
        layout = GraphMemoryLayout.for_graph(g)
        assert layout.total_bytes >= 0
        assert layout.num_edges == 0
