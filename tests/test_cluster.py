"""Unit and property tests for the :mod:`repro.cluster` building blocks.

Three layers, bottom up:

- :class:`HashRing` — deterministic consistent-hash placement.  The
  property suite asserts *exact* invariants, not statistical hopes:
  placement is independent of insertion order and of the process that
  computes it, and on a join/leave every key whose owner changes moves
  to/from exactly the changed slot.
- Shard split/merge — mining a root range in arbitrary partitions and
  merging in arbitrary order is byte-identical to mining it whole (the
  commutativity the cluster's retry/failover machinery relies on).
- :class:`MiningCluster` / :class:`ClusterExecutor` — constructor
  validation, lifecycle, and respawn-backoff timing driven by a fake
  clock so no test sleeps real seconds.
"""

from __future__ import annotations

import random
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_temporal_graph
from repro.cluster import (
    ClusterExecutor,
    ClusterFailed,
    DEFAULT_VNODES,
    HashRing,
    MiningCluster,
    slot_name,
)
from repro.cluster.node import build_graph_state, mine_in_state
from repro.mining.mackey import MackeyMiner
from repro.motifs.catalog import M1, PING_PONG
from repro.resilience import FaultPlan

# -- hash ring ----------------------------------------------------------------

slot_names = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1,
        max_size=12,
    ),
    min_size=1,
    max_size=8,
    unique=True,
)
keys = st.lists(
    st.text(alphabet="0123456789abcdef", min_size=8, max_size=32),
    min_size=1,
    max_size=32,
    unique=True,
)


class TestHashRing:
    @settings(max_examples=50, deadline=None)
    @given(slot_names, keys, st.randoms(use_true_random=False))
    def test_placement_independent_of_insertion_order(self, slots, ks, rng):
        """The ring is a pure function of its member set: shuffling the
        insertion order never changes any key's placement."""
        a = HashRing(slots, vnodes=16)
        shuffled = list(slots)
        rng.shuffle(shuffled)
        b = HashRing(shuffled, vnodes=16)
        for key in ks:
            assert a.nodes_for(key, len(slots)) == b.nodes_for(key, len(slots))

    @settings(max_examples=50, deadline=None)
    @given(slot_names, keys)
    def test_join_moves_keys_only_to_the_new_slot(self, slots, ks):
        """Adding one slot: a key's primary either stays put or moves TO
        the new slot — never between two old slots.  (The exact 1/N
        stability invariant, stated as set membership.)"""
        ring = HashRing(slots, vnodes=16)
        before = {k: ring.node_for(k) for k in ks}
        ring.add("joined-slot")
        for k in ks:
            after = ring.node_for(k)
            if after != before[k]:
                assert after == "joined-slot"

    @settings(max_examples=50, deadline=None)
    @given(slot_names, keys, st.data())
    def test_leave_moves_only_the_dead_slots_keys(self, slots, ks, data):
        """Removing one slot: only keys it owned change primary."""
        if len(slots) < 2:
            return
        ring = HashRing(slots, vnodes=16)
        victim = data.draw(st.sampled_from(slots))
        before = {k: ring.node_for(k) for k in ks}
        ring.remove(victim)
        for k in ks:
            after = ring.node_for(k)
            if after != before[k]:
                assert before[k] == victim
            else:
                assert before[k] != victim

    def test_moved_fraction_is_about_one_over_n(self):
        """Joining the 9th slot of 8 moves roughly 1/9 of 4000 keys —
        generously bounded (fixed seed, no flake)."""
        rng = random.Random(11)
        ring = HashRing((slot_name(i) for i in range(8)))
        ks = ["%032x" % rng.getrandbits(128) for _ in range(4000)]
        before = {k: ring.node_for(k) for k in ks}
        ring.add(slot_name(8))
        moved = sum(1 for k in ks if ring.node_for(k) != before[k])
        assert 0 < moved < len(ks) * 0.25  # expectation is 1/9 ≈ 0.111

    def test_deterministic_across_processes(self):
        """A fresh interpreter derives the identical placement — no
        dependence on hash randomization or process state."""
        ks = [f"{i:032x}" for i in range(40)]
        script = (
            "from repro.cluster import HashRing, slot_name\n"
            "r = HashRing(slot_name(i) for i in range(5))\n"
            f"print([r.nodes_for(k, 2) for k in {ks!r}])\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        here = HashRing(slot_name(i) for i in range(5))
        assert out == str([here.nodes_for(k, 2) for k in ks])

    def test_nodes_for_returns_k_distinct_slots(self):
        ring = HashRing(slot_name(i) for i in range(4))
        owners = ring.nodes_for("somekey", 3)
        assert len(owners) == 3 and len(set(owners)) == 3
        assert ring.node_for("somekey") == owners[0]
        # k beyond the ring degenerates to "every slot, ring order".
        assert sorted(ring.nodes_for("somekey", 99)) == ring.slots

    def test_successors_excludes(self):
        ring = HashRing(slot_name(i) for i in range(4))
        placed = set(ring.nodes_for("k", 2))
        rest = ring.successors("k", exclude=placed)
        assert not placed & set(rest)
        assert set(rest) == set(ring.slots) - placed

    def test_validation_errors(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add("a")
        with pytest.raises(ValueError):
            ring.add("")
        with pytest.raises(KeyError):
            ring.remove("zzz")
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
        with pytest.raises(ValueError):
            ring.nodes_for("k", 0)
        with pytest.raises(KeyError):
            HashRing([]).node_for("k")

    def test_default_vnodes_balance(self):
        """With the default vnode count, no slot of 6 owns a wildly
        disproportionate share of keys (load ratio sanity, fixed seed)."""
        rng = random.Random(5)
        ring = HashRing((slot_name(i) for i in range(6)), vnodes=DEFAULT_VNODES)
        loads = {s: 0 for s in ring.slots}
        for _ in range(6000):
            loads[ring.node_for("%032x" % rng.getrandbits(128))] += 1
        assert max(loads.values()) < 3 * (6000 // 6)


# -- shard split/merge commutativity ------------------------------------------

@st.composite
def partitions(draw, m):
    """A random partition of [0, m) into contiguous chunks."""
    cuts = draw(
        st.lists(st.integers(0, m), min_size=0, max_size=6, unique=True)
    )
    edges = sorted(set([0, m] + cuts))
    return list(zip(edges, edges[1:]))


class TestShardSplitMerge:
    """Mining root ranges in any split, merged in any order, equals the
    whole-range serial result — counts AND counters.  This runs the
    actual node-side chunk body (:func:`mine_in_state`), so it is the
    exact computation a retried/failed-over chunk re-executes."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(0, 2**32 - 1),
        st.sampled_from([M1, PING_PONG]),
        st.data(),
    )
    def test_split_merge_commutes(self, seed, motif, data):
        rng = random.Random(seed)
        graph = random_temporal_graph(rng, 12, 80, time_range=120)
        delta = 40
        serial = MackeyMiner(graph, motif, delta).mine()
        state = build_graph_state(graph.as_arrays(), graph.num_nodes)
        chunks = data.draw(partitions(graph.num_edges))
        data.draw(st.randoms(use_true_random=False)).shuffle(chunks)
        total = 0
        from repro.mining.results import SearchCounters

        counters = SearchCounters()
        for lo, hi in chunks:
            count, cdict = mine_in_state(
                state, "motif", motif.edges, delta, lo, hi
            )
            total += count
            counters.merge(SearchCounters(**cdict))
        assert total == serial.count
        assert counters.as_dict() == serial.counters.as_dict()


# -- fake-clock supervision ---------------------------------------------------

class FakeClock:
    """Deterministic time: ``sleep`` advances ``clock`` instantly."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps = []

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


class TestMiningClusterUnits:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MiningCluster(0)
        with pytest.raises(ValueError):
            MiningCluster(2, replication=3)
        with pytest.raises(ValueError):
            MiningCluster(2, replication=0)
        with pytest.raises(ValueError):
            MiningCluster(2, chunk_timeout_s=0)
        with pytest.raises(ValueError):
            MiningCluster(2, max_chunk_errors=0)

    def test_executor_validation(self):
        with pytest.raises(ValueError):
            ClusterExecutor()  # neither cluster nor num_nodes
        with pytest.raises(ValueError):
            ClusterExecutor(object(), num_nodes=2)  # both
        with pytest.raises(ValueError):
            ClusterExecutor(num_nodes=2, engine="nope")
        with pytest.raises(ValueError):
            ClusterExecutor(object(), seed=3)  # kwargs with shared cluster

    def test_respawn_backoff_runs_on_fake_time(self):
        """A one-node cluster whose node dies mid-run, with a backoff so
        long (60 s base) that real-time respawn would stall the suite:
        the injectable clock/sleep completes it immediately.  The
        respawned process re-receives the graph and finishes the run
        byte-identically."""
        rng = random.Random(31)
        graph = random_temporal_graph(rng, 20, 250, time_range=300)
        serial = MackeyMiner(graph, M1, 60).mine()
        fake = FakeClock()
        plan = FaultPlan.kill_worker(0, at_chunk=2, site="node.chunk")
        with MiningCluster(
            1,
            fault_plan=plan,
            respawn_budget=50,
            backoff_base_s=60.0,
            backoff_cap_s=120.0,
            clock=fake.clock,
            sleep=fake.sleep,
        ) as cluster:
            result = cluster.count(graph, M1, 60, chunks_per_node=2)
            stats = cluster.stats.as_dict()
        assert result.count == serial.count
        assert result.counters.as_dict() == serial.counters.as_dict()
        assert stats["node_deaths"] >= 1
        assert stats["respawns"] >= 1
        # The graph was re-shipped to each respawned process.
        assert stats["graph_ships"] == 1 + stats["respawns"]
        # The long backoff elapsed on the fake clock, not in real time.
        assert fake.now >= 30.0
        assert fake.sleeps, "backoff should have slept on the fake clock"

    def test_budget_exhaustion_fails_cleanly_on_fake_time(self):
        """Every respawned process dies at its first chunk; once the
        budget is spent a single-node cluster has nowhere to fail over
        and must raise ClusterFailed — again without real sleeping."""
        rng = random.Random(32)
        graph = random_temporal_graph(rng, 15, 120, time_range=200)
        fake = FakeClock()
        plan = FaultPlan.kill_every_worker(at_chunk=1, site="node.chunk")
        with MiningCluster(
            1,
            fault_plan=plan,
            respawn_budget=2,
            backoff_base_s=60.0,
            backoff_cap_s=120.0,
            clock=fake.clock,
            sleep=fake.sleep,
        ) as cluster:
            with pytest.raises(ClusterFailed):
                cluster.count(graph, M1, 60)
            assert cluster.broken
            stats = cluster.stats.as_dict()
        assert stats["respawns"] == 2
        assert stats["node_deaths"] == 3  # initial + both respawns
        assert fake.sleeps

    def test_closed_cluster_refuses_work(self):
        rng = random.Random(33)
        graph = random_temporal_graph(rng, 10, 40)
        cluster = MiningCluster(1)
        cluster.close()
        assert cluster.closed
        with pytest.raises(RuntimeError):
            cluster.count(graph, M1, 50)
        cluster.close()  # idempotent

    def test_placement_is_ring_derived_and_stable(self):
        """ensure_graph places on the ring's slots for the fingerprint;
        drop_graph forgets; re-ensuring reproduces the same placement."""
        rng = random.Random(34)
        graph = random_temporal_graph(rng, 10, 60)
        fp = graph.fingerprint()
        with MiningCluster(3, replication=2) as cluster:
            assert cluster.placement(fp) == ()
            cluster.ensure_graph(graph)
            placed = cluster.placement(fp)
            assert len(placed) == 2
            expected = [
                int(name.split("-", 1)[1])
                for name in cluster.ring.nodes_for(fp, 2)
            ]
            assert list(placed) == expected
            cluster.drop_graph(fp)
            assert cluster.placement(fp) == ()
            cluster.ensure_graph(graph)
            assert cluster.placement(fp) == placed
