"""Differential parity: live incremental ingestion vs offline replay.

For every dataset generator x batch size (1, 7, all-at-once) the full
event stream of a panel of standing subscriptions — update payloads and
threshold alerts — must be byte-identical to ``repro.live.oracle``'s
offline replay, which recounts from scratch with the independent
``repro.streaming`` machinery.  Shuffled arrival orders route through
the reorder buffer and must converge to the same bytes.
"""

import pytest

from repro.graph.generators import DATASET_NAMES, make_dataset
from repro.live.driver import _shuffled
from repro.live.ingest import LiveGraph
from repro.live.oracle import (
    SubSpec,
    offline_replay,
    schedule_from_acks,
    sorted_arrivals,
)
from repro.live.subscriptions import THRESHOLD, UPDATE, Subscription
from repro.motifs.catalog import motif_by_name
from repro.service.query import payload_bytes

SCALES = {
    "email-eu": 0.03,
    "mathoverflow": 0.025,
    "ask-ubuntu": 0.02,
    "superuser": 0.015,
    "wiki-talk": 0.012,
    "stackoverflow": 0.008,
}

BATCH_SIZES = (1, 7, None)  # None = single all-at-once batch


def make_panel(delta):
    """A small mixed panel: update + threshold, full-delta + half-delta."""
    return [
        ("M1", delta, UPDATE, None),
        ("M2", max(1, delta // 2), UPDATE, None),
        ("M3", delta, THRESHOLD, 0),
        ("ping-pong", delta, THRESHOLD, 2),
        ("fan-in", delta, UPDATE, None),
    ]


def run_case(dataset, batch_size, shuffle="none", seed=3):
    g = make_dataset(dataset, scale=SCALES[dataset], seed=11)
    delta = max(1, g.time_span // 40)
    edges = list(zip(g.src.tolist(), g.dst.tolist(), g.ts.tolist()))
    size = len(edges) if batch_size is None else batch_size
    block = 4 * size
    arrivals = _shuffled(edges, shuffle, seed, block)

    opts = {}
    if shuffle == "full":
        opts = {"lateness": None, "reorder_capacity": len(arrivals) + 1}
    elif shuffle == "block":
        opts = {"lateness": None, "reorder_capacity": block}
    live = LiveGraph(dataset, delta, **opts)

    specs, outbox_capacity = [], (len(arrivals) // size) + 16
    for i, (motif, sub_delta, kind, threshold) in enumerate(make_panel(delta)):
        sub_id = f"sub-{i}"
        live.attach(
            Subscription(sub_id, dataset, motif_by_name(motif), sub_delta,
                         kind=kind, threshold=threshold,
                         outbox_capacity=outbox_capacity)
        )
        specs.append(
            SubSpec(sub_id, motif_by_name(motif), sub_delta, kind, threshold)
        )

    acks = []
    for i in range(0, len(arrivals), size):
        acks.append(live.append_batch(arrivals[i:i + size], seq=i))
    acks.append(live.append_batch([], seq=len(arrivals) + 1, flush=True))
    assert live.reorder.late_dropped == 0

    expected = offline_replay(
        sorted_arrivals(arrivals), specs, schedule_from_acks(acks),
        dataset, delta,
    )
    for spec in specs:
        got = live.subscriptions[spec.sub_id].outbox.read_after(0)
        want = expected["events"][spec.sub_id]
        assert [payload_bytes(e) for e in got] == [
            payload_bytes(e) for e in want
        ], f"{dataset} batch={batch_size} shuffle={shuffle}: {spec.sub_id}"
    assert live.status()["window_fingerprint"] == \
        expected["window_fingerprint"]
    return expected


def test_scales_cover_every_generator_family():
    assert set(SCALES) == set(DATASET_NAMES)


@pytest.mark.parametrize("batch_size", BATCH_SIZES,
                         ids=lambda b: f"batch-{b or 'all'}")
@pytest.mark.parametrize("dataset", sorted(SCALES))
def test_in_order_parity(dataset, batch_size):
    expected = run_case(dataset, batch_size, shuffle="none")
    # Not a vacuous pass: the panel must actually complete instances.
    assert sum(expected["counts"].values()) > 0


@pytest.mark.parametrize("dataset", sorted(SCALES))
def test_block_shuffled_arrival_parity(dataset):
    run_case(dataset, 7, shuffle="block")


@pytest.mark.parametrize("dataset", ["email-eu", "wiki-talk"])
def test_fully_shuffled_arrival_parity(dataset):
    run_case(dataset, 7, shuffle="full")


def test_batch_size_does_not_change_bytes():
    """Same dataset through different batchings yields identical final
    windows (event streams differ only in how they are sliced)."""
    fps = set()
    for batch_size in BATCH_SIZES:
        expected = run_case("email-eu", batch_size)
        fps.add(expected["window_fingerprint"])
    assert len(fps) == 1
