"""Tests for search index memoization (paper §VI-A)."""

import random

import pytest

from repro.graph.generators import make_dataset
from repro.mining.mackey import MackeyMiner
from repro.motifs.catalog import EVALUATION_MOTIFS, M1
from repro.sim.accelerator import MintSimulator
from repro.sim.config import MintConfig

from conftest import random_temporal_graph


class TestSoftwareMemoization:
    @pytest.mark.parametrize("motif", EVALUATION_MOTIFS)
    def test_memoization_never_changes_counts(self, motif):
        g = make_dataset("wiki-talk", scale=0.03, seed=5)
        delta = g.time_span // 30
        plain = MackeyMiner(g, motif, delta).mine()
        memo = MackeyMiner(g, motif, delta, memoize=True).mine()
        assert plain.count == memo.count

    @pytest.mark.parametrize("seed", range(5))
    def test_memoization_on_random_graphs(self, seed):
        rng = random.Random(seed)
        g = random_temporal_graph(rng, num_nodes=9, num_edges=60, time_range=80)
        delta = rng.randrange(10, 50)
        assert (
            MackeyMiner(g, M1, delta).mine().count
            == MackeyMiner(g, M1, delta, memoize=True).mine().count
        )

    def test_memoized_run_pays_extra_searches(self):
        g = make_dataset("email-eu", scale=0.05, seed=5)
        delta = g.time_span // 30
        plain = MackeyMiner(g, M1, delta).mine()
        memo = MackeyMiner(g, M1, delta, memoize=True).mine()
        # The paper's software experiment: memoization triggers an
        # additional (refresh) search.
        assert memo.counters.binary_searches > plain.counters.binary_searches
        # But candidates scanned are identical — same algorithm.
        assert memo.counters.candidates_scanned == plain.counters.candidates_scanned


class TestHardwareMemoization:
    def _run(self, memoize, per_tree_cache=True, seed=5):
        g = make_dataset("wiki-talk", scale=0.05, seed=seed)
        delta = g.time_span // 30
        cfg = MintConfig(
            num_pes=32, memoize=memoize, per_tree_index_cache=per_tree_cache
        ).with_cache_mb(0.0625)
        return g, delta, MintSimulator(g, M1, delta, cfg).run()

    def test_memoization_preserves_sim_counts(self):
        g, delta, with_memo = self._run(True)
        _, _, without = self._run(False)
        expected = MackeyMiner(g, M1, delta).mine().count
        assert with_memo.matches == without.matches == expected

    def test_memoization_reduces_streamed_items(self):
        # Disable the per-tree cache to isolate the pure §VI-A effect.
        _, _, with_memo = self._run(True, per_tree_cache=False)
        _, _, without = self._run(False, per_tree_cache=False)
        assert (
            with_memo.walk.index_items_streamed < without.walk.index_items_streamed
        )
        assert with_memo.walk.index_items_skipped_by_memo > 0
        assert without.walk.index_items_skipped_by_memo == 0

    def test_memo_table_accesses_happen_only_when_enabled(self):
        _, _, with_memo = self._run(True)
        _, _, without = self._run(False)
        assert with_memo.walk.memo_reads > 0
        assert with_memo.walk.memo_writes > 0
        assert without.walk.memo_reads == 0
        assert without.walk.memo_writes == 0

    def test_per_tree_cache_preserves_counts(self):
        _, _, with_cache = self._run(True, per_tree_cache=True)
        _, _, without_cache = self._run(True, per_tree_cache=False)
        assert with_cache.matches == without_cache.matches

    def test_per_tree_cache_reduces_streaming(self):
        _, _, with_cache = self._run(True, per_tree_cache=True)
        _, _, without_cache = self._run(True, per_tree_cache=False)
        assert (
            with_cache.walk.index_items_streamed
            <= without_cache.walk.index_items_streamed
        )
