"""Tests for dataset statistics (Table I support)."""

import pytest

from repro.graph.generators import DATASET_NAMES
from repro.graph.stats import compute_stats, dataset_table, storage_bytes
from repro.graph.temporal_graph import TemporalGraph


class TestComputeStats:
    def test_basic_stats(self, burst_graph):
        st = compute_stats(burst_graph, name="burst")
        assert st.name == "burst"
        assert st.num_edges == 9
        assert st.num_nodes == 3
        assert st.max_out_degree >= st.mean_out_degree
        assert st.p90_out_degree <= st.max_out_degree

    def test_time_span_days(self):
        g = TemporalGraph([(0, 1, 0), (1, 0, 86_400 * 3)])
        st = compute_stats(g)
        assert st.time_span_days == pytest.approx(3.0)

    def test_storage_bytes_formula(self, burst_graph):
        m, n = burst_graph.num_edges, burst_graph.num_nodes
        expected = m * 12 + 2 * (m * 4 + (n + 1) * 4)
        assert storage_bytes(burst_graph) == expected

    def test_size_mb_consistent(self, burst_graph):
        st = compute_stats(burst_graph)
        assert st.size_mb == pytest.approx(storage_bytes(burst_graph) / 1e6)

    def test_empty_graph(self):
        st = compute_stats(TemporalGraph([]))
        assert st.num_edges == 0
        assert st.max_out_degree == 0

    def test_row_rendering(self, burst_graph):
        row = compute_stats(burst_graph, "x").row()
        assert row[0] == "x"
        assert len(row) == 6


class TestDatasetTable:
    def test_all_datasets_present(self):
        rows = dataset_table(scale=0.05, seed=0)
        assert [r.name for r in rows] == list(DATASET_NAMES)

    def test_subset(self):
        rows = dataset_table(names=["wiki-talk"], scale=0.05)
        assert len(rows) == 1
        assert rows[0].name == "wiki-talk"
