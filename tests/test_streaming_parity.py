"""Differential property suite: the streaming engine vs the batch oracle.

The streaming subsystem has no paper figure to match — its correctness
claim is *exact parity with the batch miners*.  This suite pins it:

- full-replay counts equal ``mine_mackey`` counts on seeded graphs from
  every generator family × every catalog motif;
- parity is invariant to batching (1, 7, all-at-once, shuffled sizes);
- prefix replays equal batch counts on the prefix graph, and snapshots
  are byte-identical to batch-built ``TemporalGraph``s (arrays + CSR);
- the catalog/grid counters match per-motif batch breakdowns exactly;
- hypothesis-randomized graphs (duplicate timestamps, self-loops)
  agree with the Mackey reference;
- the shared δ-boundary adversarial cases hold for the streaming
  backend like every batch backend.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from delta_cases import COUNT_BACKENDS, DELTA_BOUNDARY_CASES
from repro.graph.generators import DATASET_NAMES, make_dataset
from repro.graph.temporal_graph import TemporalGraph
from repro.mining.mackey import count_motifs
from repro.mining.multi import grid_census
from repro.motifs.catalog import (
    EVALUATION_MOTIFS,
    EXTRA_MOTIFS,
    M1,
    M2,
    PING_PONG,
)
from repro.streaming import (
    StreamingCatalogCounter,
    StreamingCounter,
    StreamingGridCounter,
    iter_batches,
    replay_stream,
    stream_count,
)

CATALOG = EVALUATION_MOTIFS + EXTRA_MOTIFS

#: One small seeded graph per generator family; scales keep the full
#: family × motif × batch-size product affordable for tier-1.
FAMILY_SCALES = {
    "email-eu": 0.06,
    "mathoverflow": 0.05,
    "ask-ubuntu": 0.04,
    "superuser": 0.03,
    "wiki-talk": 0.02,
    "stackoverflow": 0.013,
}


def _edges_of(graph: TemporalGraph):
    return list(zip(graph.src.tolist(), graph.dst.tolist(), graph.ts.tolist()))


@pytest.fixture(scope="module")
def family_graphs():
    graphs = {}
    for name in DATASET_NAMES:
        g = make_dataset(name, scale=FAMILY_SCALES[name], seed=11)
        delta = max(1, g.time_span // 40)
        graphs[name] = (g, delta)
    return graphs


@pytest.fixture(scope="module")
def batch_counts(family_graphs):
    """Mackey oracle counts for every (family, motif) pair, computed once."""
    return {
        (name, motif.name): count_motifs(g, motif, delta)
        for name, (g, delta) in family_graphs.items()
        for motif in CATALOG
    }


class TestFullReplayParity:
    @pytest.mark.parametrize("family", DATASET_NAMES)
    @pytest.mark.parametrize("motif", CATALOG, ids=lambda m: m.name)
    def test_replay_equals_mackey(
        self, family, motif, family_graphs, batch_counts
    ):
        g, delta = family_graphs[family]
        expected = batch_counts[(family, motif.name)]
        assert stream_count(g, motif, delta) == expected

    @pytest.mark.parametrize("family", ["email-eu", "wiki-talk"])
    @pytest.mark.parametrize("batch_size", [1, 7, 10**9])
    def test_batch_size_invariance(
        self, family, batch_size, family_graphs, batch_counts
    ):
        g, delta = family_graphs[family]
        for motif in (M1, M2, PING_PONG):
            counter = StreamingCounter(motif, delta)
            for batch in iter_batches(g, min(batch_size, max(1, g.num_edges))):
                counter.add_batch(batch)
            assert counter.count == batch_counts[(family, motif.name)], (
                f"{motif.name} diverged at batch_size={batch_size}"
            )

    @pytest.mark.parametrize("family", DATASET_NAMES)
    def test_shuffled_batch_sizes(self, family, family_graphs, batch_counts):
        """Randomized (seeded) batch segmentation never changes counts."""
        g, delta = family_graphs[family]
        edges = _edges_of(g)
        rng = random.Random(hash(family) & 0xFFFF)
        counter = StreamingCounter(M1, delta)
        i = 0
        while i < len(edges):
            step = rng.choice((1, 2, 3, 5, 8, 13, 21))
            counter.add_batch(edges[i : i + step])
            i += step
        assert counter.count == batch_counts[(family, "M1")]


class TestPrefixReplay:
    @pytest.mark.parametrize("family", ["mathoverflow", "stackoverflow"])
    @pytest.mark.parametrize("fraction", [0.25, 0.5, 0.9])
    def test_prefix_counts_equal_prefix_graph(
        self, family, fraction, family_graphs
    ):
        g, delta = family_graphs[family]
        k = int(g.num_edges * fraction)
        edges = _edges_of(g)[:k]
        counter = StreamingCounter(M1, delta)
        counter.add_batch(edges)
        prefix_graph = TemporalGraph(edges, num_nodes=g.num_nodes)
        assert counter.count == count_motifs(prefix_graph, M1, delta)

    @pytest.mark.parametrize("family", ["email-eu", "superuser"])
    def test_snapshot_byte_identical_to_batch_graph(
        self, family, family_graphs
    ):
        g, delta = family_graphs[family]
        counter = StreamingCounter(M1, delta)
        counter.add_batch(_edges_of(g))
        snap = counter.snapshot()
        # The stream only knows nodes it has seen, so compare against a
        # batch graph with the same inferred node count.
        want = TemporalGraph(_edges_of(g))
        assert snap.num_nodes == want.num_nodes
        for attr in (
            "src", "dst", "ts",
            "out_offsets", "out_edge_idx", "in_offsets", "in_edge_idx",
        ):
            assert np.array_equal(
                getattr(snap, attr), getattr(want, attr)
            ), f"{attr} diverged"

    def test_snapshot_minable_by_batch_miners_midstream(self, family_graphs):
        g, delta = family_graphs["ask-ubuntu"]
        edges = _edges_of(g)
        counter = StreamingCounter(M2, delta)
        counter.add_batch(edges[: len(edges) // 3])
        snap = counter.snapshot()
        assert count_motifs(snap, M2, delta) == counter.count
        # Keep streaming after the snapshot: the counter is unaffected.
        counter.add_batch(edges[len(edges) // 3 :])
        assert counter.count == count_motifs(g, M2, delta)


class TestCatalogAndGrid:
    @pytest.mark.parametrize("family", ["email-eu", "wiki-talk"])
    def test_catalog_breakdown_exact(
        self, family, family_graphs, batch_counts
    ):
        g, delta = family_graphs[family]
        counter = StreamingCatalogCounter(CATALOG, delta)
        replay_stream(g, counter, batch_size=17)
        assert counter.counts == {
            motif.name: batch_counts[(family, motif.name)]
            for motif in CATALOG
        }

    def test_grid_counter_equals_grid_census(self, family_graphs):
        g, delta = family_graphs["email-eu"]
        counter = StreamingGridCounter(delta)
        counter.add_batch(_edges_of(g))
        assert counter.grid_counts == grid_census(g, delta)


class TestDeltaBoundarySharedCases:
    """The shared adversarial cases, exercised through the streaming
    backend the same way ``test_property.py`` runs the batch backends."""

    @pytest.mark.parametrize(
        "case", DELTA_BOUNDARY_CASES, ids=lambda c: c.name
    )
    def test_streaming_matches_expected(self, case):
        assert (
            COUNT_BACKENDS["streaming"](case.graph(), case.motif, case.delta)
            == case.expected
        )

    @pytest.mark.parametrize(
        "case", DELTA_BOUNDARY_CASES, ids=lambda c: c.name
    )
    def test_streaming_batchsize_one_and_all(self, case):
        g = case.graph()
        edges = _edges_of(g)
        one = StreamingCounter(case.motif, case.delta)
        for e in edges:
            one.add_edge(*e)
        allatonce = StreamingCounter(case.motif, case.delta)
        allatonce.add_batch(edges)
        assert one.count == allatonce.count == case.expected


@st.composite
def raw_edge_streams(draw, max_nodes=6, max_edges=24, max_time=40):
    """Time-sorted raw edge lists with duplicate timestamps and
    self-loops — the inputs that stress uniquification and filtering."""
    n = draw(st.integers(2, max_nodes))
    m = draw(st.integers(0, max_edges))
    edges = []
    for _ in range(m):
        s = draw(st.integers(0, n - 1))
        d = draw(st.integers(0, n - 1))
        t = draw(st.integers(0, max_time))
        edges.append((s, d, t))
    edges.sort(key=lambda e: e[2])
    return n, edges


class TestRandomizedDifferential:
    @settings(max_examples=60, deadline=None)
    @given(
        raw_edge_streams(),
        st.sampled_from([M1, M2, PING_PONG]),
        st.integers(0, 50),
    )
    def test_streaming_equals_mackey_on_raw_streams(self, stream, motif, delta):
        n, edges = stream
        g = TemporalGraph(edges, num_nodes=n)
        counter = StreamingCounter(motif, delta)
        for s, d, t in edges:
            counter.add_edge(s, d, t)
        assert counter.count == count_motifs(g, motif, delta)
        # The incremental nudge reproduces the batch uniquification.
        assert counter.snapshot().ts.tolist() == g.ts.tolist()

    @settings(max_examples=30, deadline=None)
    @given(raw_edge_streams(), st.integers(0, 50), st.integers(1, 9))
    def test_streaming_batching_invariant_on_raw_streams(
        self, stream, delta, batch_size
    ):
        n, edges = stream
        batched = StreamingCounter(M1, delta)
        i = 0
        while i < len(edges):
            batched.add_batch(edges[i : i + batch_size])
            i += batch_size
        assert batched.count == stream_count(
            TemporalGraph(edges, num_nodes=n), M1, delta
        )

    def test_out_of_order_edge_rejected(self):
        counter = StreamingCounter(M1, 10)
        counter.add_edge(0, 1, 100)
        with pytest.raises(ValueError, match="out-of-order"):
            counter.add_edge(1, 2, 99)
