"""Degraded-mode serving: breakers, broken-pool eviction, crash guards.

The serving layer's failure contract — *shed throughput, never
correctness* — pinned deterministically:

- a cached pool found broken/closed at checkout is evicted and rebuilt,
  not handed out again;
- an injected backend failure trips the per-graph breaker; while open,
  queries are mined serially inline (correct answers, degraded flag
  up); after the cooldown one probe closes it again;
- an unexpected dispatcher exception errors only the group in hand —
  the dispatch thread survives and later queries are served;
- ``/healthz`` reports 200 + ``degraded`` truthfully while serving and
  503 once the service genuinely cannot answer.
"""

from __future__ import annotations

import json
import random
import time
from http.client import HTTPConnection

import pytest

from repro.mining.mackey import MackeyMiner
from repro.mining.parallel import MiningCancelled
from repro.motifs.catalog import M1, M2
from repro.resilience import CLOSED, HALF_OPEN, OPEN, FaultPlan
from repro.service import (
    MotifService,
    PoolExecutor,
    build_payload,
    payload_bytes,
    make_server,
)
from tests.conftest import random_temporal_graph

DELTA = 50


@pytest.fixture(scope="module")
def graph():
    rng = random.Random(31)
    return random_temporal_graph(rng, 30, 400, time_range=400)


@pytest.fixture(scope="module")
def expected(graph):
    out = {}
    for motif in (M1, M2):
        r = MackeyMiner(graph, motif, DELTA).mine()
        out[motif.name] = payload_bytes(
            build_payload(
                graph.fingerprint(), motif, DELTA, r.count,
                r.counters.as_dict(),
            )
        )
    return out


def assert_ok_and_correct(result, expected, motif):
    assert result.ok, result
    assert payload_bytes(result.payload) == expected[motif.name]


@pytest.mark.timeout(180)
class TestBrokenPoolCheckout:
    def test_closed_pool_is_evicted_and_rebuilt(self, graph, expected):
        executor = PoolExecutor(2)
        try:
            fp = graph.fingerprint()
            first = executor.count_batch(graph, [M1], DELTA)
            assert first[0][0] is not None
            # Break the cached pool from outside (as a respawn-budget
            # exhaustion or a BrokenProcessPool would).
            executor._pools[fp].close()
            again = executor.count_batch(graph, [M2], DELTA)
            payload = payload_bytes(
                build_payload(fp, M2, DELTA, again[0][0], again[0][1])
            )
            assert payload == expected[M2.name]
            assert executor.counters.get("pools_rebuilt") == 1
            # The rebuilt pool is healthy and cached.
            assert not executor._pools[fp].closed
        finally:
            executor.close()

    def test_unsupervised_broken_pool_is_evicted_too(self, graph, expected):
        # The plain MiningPool marks itself broken on BrokenProcessPool;
        # checkout must treat that exactly like a closed pool.
        executor = PoolExecutor(2, supervised=False)
        try:
            fp = graph.fingerprint()
            executor.count_batch(graph, [M1], DELTA)
            executor._pools[fp]._broken = True
            again = executor.count_batch(graph, [M1], DELTA)
            payload = payload_bytes(
                build_payload(fp, M1, DELTA, again[0][0], again[0][1])
            )
            assert payload == expected[M1.name]
            assert executor.counters.get("pools_rebuilt") == 1
        finally:
            executor.close()


@pytest.mark.timeout(180)
class TestBreakerDegradation:
    def test_backend_failure_falls_back_inline_same_call(self, graph, expected):
        # breaker_failures=2: the first failure must NOT open the
        # breaker, yet the answer still arrives (inline fallback).
        executor = PoolExecutor(2, breaker_failures=2)
        plan = FaultPlan.raise_at("executor.batch", [1])
        try:
            with plan.installed():
                batch = executor.count_batch(graph, [M1], DELTA)
            payload = payload_bytes(
                build_payload(graph.fingerprint(), M1, DELTA,
                              batch[0][0], batch[0][1])
            )
            assert payload == expected[M1.name]
            assert executor.counters.get("backend_failures") == 1
            assert executor.counters.get("degraded_queries") == 1
            assert executor.breaker_states()[graph.fingerprint()] == CLOSED
            assert not executor.degraded
        finally:
            executor.close()

    def test_breaker_opens_then_probes_closed(self, graph, expected):
        executor = PoolExecutor(2, breaker_failures=1, breaker_cooldown_s=0.2)
        fp = graph.fingerprint()
        plan = FaultPlan.raise_at("executor.batch", [1])
        try:
            with plan.installed():
                executor.count_batch(graph, [M1], DELTA)  # trips it open
                assert executor.breaker_states()[fp] == OPEN
                assert executor.degraded
                # While open the pool is skipped entirely: the injected
                # site is never reached, the answer is mined inline.
                batch = executor.count_batch(graph, [M2], DELTA)
                payload = payload_bytes(
                    build_payload(fp, M2, DELTA, batch[0][0], batch[0][1])
                )
                assert payload == expected[M2.name]
                assert executor.counters.get("degraded_queries") >= 2
                assert len(plan.fired) == 1
                # Past the cooldown, one probe goes back through the
                # pool and closes the breaker.
                time.sleep(0.25)
                executor.count_batch(graph, [M1], DELTA)
            assert executor.breaker_states()[fp] == CLOSED
            assert executor.counters.get("breaker_opens") == 1
            assert executor.counters.get("breaker_half_opens") == 1
            assert executor.counters.get("breaker_closes") == 1
        finally:
            executor.close()

    def test_cancelled_probe_does_not_wedge_the_breaker(self, graph, expected):
        executor = PoolExecutor(2, breaker_failures=1, breaker_cooldown_s=0.2)
        fp = graph.fingerprint()
        plan = FaultPlan.raise_at("executor.batch", [1])
        try:
            with plan.installed():
                executor.count_batch(graph, [M1], DELTA)  # trips it open
                assert executor.breaker_states()[fp] == OPEN
                time.sleep(0.25)
                # The half-open probe is cancelled by its deadline: the
                # backend is judged neither good nor bad, and the probe
                # slot must be released — not held in flight forever.
                with pytest.raises(MiningCancelled):
                    executor.count_batch(
                        graph, [M1], DELTA, cancel_check=lambda: True
                    )
                assert executor.breaker_states()[fp] == HALF_OPEN
                # The next caller gets the re-armed probe; its success
                # closes the breaker instead of falling back inline.
                batch = executor.count_batch(graph, [M2], DELTA)
            payload = payload_bytes(
                build_payload(fp, M2, DELTA, batch[0][0], batch[0][1])
            )
            assert payload == expected[M2.name]
            assert executor.breaker_states()[fp] == CLOSED
        finally:
            executor.close()


@pytest.mark.timeout(180)
class TestDispatcherCrashGuard:
    def test_dispatcher_survives_unexpected_exceptions(self, graph, expected):
        with MotifService() as svc:
            svc.register_graph(graph, name="g")
            real_submit = svc.scheduler._lane_pool.submit
            calls = {"n": 0}

            def exploding_submit(*args, **kwargs):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("lane pool exploded")
                return real_submit(*args, **kwargs)

            svc.scheduler._lane_pool.submit = exploding_submit
            bad = svc.query("g", M1, DELTA)
            assert bad.status == "error"
            assert "dispatcher error" in bad.error
            assert "lane pool exploded" in bad.error
            # The dispatch thread survived the crash and keeps serving.
            assert svc.scheduler.dispatcher_alive
            good = svc.query("g", M2, DELTA)
            assert_ok_and_correct(good, expected, M2)
            m = svc.metrics()
            assert m.dispatcher_crashes == 1
            assert svc.health()["ok"]


@pytest.mark.timeout(180)
class TestDegradedService:
    def test_injected_backend_failure_degrades_then_recovers(
        self, graph, expected
    ):
        executor = PoolExecutor(2, breaker_failures=1, breaker_cooldown_s=0.3)
        plan = FaultPlan.raise_at("executor.batch", [1])
        with plan.installed():
            with MotifService(executor=executor, cache_bytes=0) as svc:
                svc.register_graph(graph, name="g")
                # The failure is absorbed: correct answer, breaker open.
                r = svc.query("g", M1, DELTA)
                assert_ok_and_correct(r, expected, M1)
                health = svc.health()
                assert health["ok"] and health["degraded"]
                m = svc.metrics()
                assert m.degraded and m.breakers_open == 1
                assert m.backend_failures == 1
                assert m.degraded_queries >= 1
                # Recovery: past cooldown the probe closes the breaker.
                time.sleep(0.35)
                r2 = svc.query("g", M2, DELTA)
                assert_ok_and_correct(r2, expected, M2)
                health = svc.health()
                assert health["ok"] and not health["degraded"]
                assert not svc.metrics().degraded

    def test_render_includes_resilience_rows(self, graph):
        with MotifService() as svc:
            svc.register_graph(graph, name="g")
            svc.query("g", M1, DELTA)
            rendered = svc.render_metrics()
            for row in ("worker deaths", "chunk retries", "backend failures",
                        "degraded queries", "breaker opens", "degraded"):
                assert row in rendered


@pytest.mark.timeout(180)
class TestHealthEndpoint:
    @pytest.fixture()
    def served(self, graph):
        svc = MotifService()
        svc.register_graph(graph, name="g")
        server = make_server(svc, port=0)
        import threading

        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        conn = HTTPConnection(*server.server_address, timeout=10)
        try:
            yield conn, svc
        finally:
            conn.close()
            server.shutdown()
            server.server_close()
            svc.close()
            thread.join(timeout=5)

    @staticmethod
    def get_health(conn):
        conn.request("GET", "/healthz")
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())

    def test_healthz_degrades_to_503_when_not_serving(self, served):
        conn, svc = served
        status, body = self.get_health(conn)
        assert status == 200 and body["ok"]
        # Simulate a dead dispatcher (the one state where the service
        # cannot answer anything): healthz must flip to 503.
        svc.scheduler._dispatcher = _DeadThread()
        status, body = self.get_health(conn)
        assert status == 503
        assert body["ok"] is False
        assert body["dispatcher_alive"] is False


class _DeadThread:
    @staticmethod
    def is_alive() -> bool:
        return False

    @staticmethod
    def join(timeout=None) -> None:
        return None
