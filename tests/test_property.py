"""Property-based tests (hypothesis) for core invariants.

The central property: every miner in the library — Mackey (with and
without memoization), the task-centric engine, Paranjape, the Mint
simulator's functional walker, and the streaming sliding-window engine —
computes the same count as the brute-force oracle, on arbitrary temporal
graphs and windows.  The δ-boundary adversarial cases
(``delta_cases.py``) are shared with the streaming differential suite so
every backend faces the same edge conditions.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from delta_cases import (
    COUNT_BACKENDS,
    DELTA_BOUNDARY_CASES,
    EXTENDED_COUNT_BACKENDS,
)
from repro.graph.temporal_graph import TemporalGraph
from repro.mining.bruteforce import brute_force_count
from repro.mining.mackey import MackeyMiner, count_motifs
from repro.mining.paranjape import ParanjapeMiner
from repro.mining.taskcentric import TaskCentricMiner
from repro.motifs.catalog import M1, M2, PATH3, PING_PONG
from repro.motifs.motif import Motif
from repro.sim.layout import GraphMemoryLayout
from repro.sim.walker import TraceWalker

MOTIFS = [M1, M2, PING_PONG, PATH3]


@st.composite
def temporal_graphs(draw, max_nodes=7, max_edges=28, max_time=50):
    n = draw(st.integers(2, max_nodes))
    m = draw(st.integers(0, max_edges))
    edges = []
    for _ in range(m):
        s = draw(st.integers(0, n - 1))
        d = draw(st.integers(0, n - 1))
        t = draw(st.integers(0, max_time))
        edges.append((s, d, t))
    return TemporalGraph(edges, num_nodes=n)


graph_strategy = temporal_graphs()
motif_strategy = st.sampled_from(MOTIFS)
delta_strategy = st.integers(0, 60)


class TestMinerAgreement:
    @settings(max_examples=60, deadline=None)
    @given(graph_strategy, motif_strategy, delta_strategy)
    def test_mackey_equals_oracle(self, g, motif, delta):
        assert count_motifs(g, motif, delta) == brute_force_count(g, motif, delta)

    @settings(max_examples=40, deadline=None)
    @given(graph_strategy, motif_strategy, delta_strategy)
    def test_memoized_mackey_equals_plain(self, g, motif, delta):
        assert (
            MackeyMiner(g, motif, delta, memoize=True).mine().count
            == count_motifs(g, motif, delta)
        )

    @settings(max_examples=40, deadline=None)
    @given(graph_strategy, motif_strategy, delta_strategy, st.integers(1, 5))
    def test_taskcentric_equals_mackey(self, g, motif, delta, workers):
        assert (
            TaskCentricMiner(g, motif, delta, num_workers=workers).mine().count
            == count_motifs(g, motif, delta)
        )

    @settings(max_examples=40, deadline=None)
    @given(graph_strategy, motif_strategy, delta_strategy)
    def test_paranjape_equals_mackey(self, g, motif, delta):
        assert ParanjapeMiner(g, motif, delta).count() == count_motifs(
            g, motif, delta
        )

    @settings(max_examples=40, deadline=None)
    @given(graph_strategy, motif_strategy, delta_strategy, st.booleans())
    def test_walker_equals_mackey(self, g, motif, delta, memoize):
        layout = GraphMemoryLayout.for_graph(g)
        walker = TraceWalker(g, motif, delta, layout, memoize=memoize)
        for root in range(g.num_edges):
            walker.begin_root(root)
            state = walker.new_tree_state()
            for _ in walker.walk(root, state):
                pass
            walker.end_root(root)
        assert walker.stats.matches == count_motifs(g, motif, delta)


class TestGraphInvariants:
    @settings(max_examples=60, deadline=None)
    @given(graph_strategy)
    def test_timestamps_strictly_increasing(self, g):
        if g.num_edges > 1:
            assert np.all(np.diff(g.ts) > 0)

    @settings(max_examples=60, deadline=None)
    @given(graph_strategy)
    def test_adjacency_partitions_edges(self, g):
        assert sorted(g.out_edge_idx.tolist()) == list(range(g.num_edges))
        assert sorted(g.in_edge_idx.tolist()) == list(range(g.num_edges))
        for u in range(g.num_nodes):
            out = g.out_edges(u)
            assert all(g.src[e] == u for e in out)
            assert list(out) == sorted(out)

    @settings(max_examples=40, deadline=None)
    @given(graph_strategy, st.integers(0, 50), st.integers(0, 50))
    def test_time_slice_edge_subset(self, g, a, b):
        lo, hi = min(a, b), max(a, b)
        sub = g.subgraph_by_time(lo, hi)
        assert sub.num_edges <= g.num_edges
        for e in sub.edges():
            assert lo <= e.t


class TestCountProperties:
    @settings(max_examples=40, deadline=None)
    @given(graph_strategy, motif_strategy, st.integers(0, 30))
    def test_count_monotone_in_delta(self, g, motif, delta):
        """A larger window can only admit more matches."""
        assert count_motifs(g, motif, delta) <= count_motifs(g, motif, delta + 10)

    @settings(max_examples=40, deadline=None)
    @given(graph_strategy, st.integers(0, 40))
    def test_single_edge_count_is_non_self_loop_edges(self, g, delta):
        single = Motif([(0, 1)], name="e")
        expected = sum(1 for e in g.edges() if e.src != e.dst)
        assert count_motifs(g, single, delta) == expected

    @settings(max_examples=30, deadline=None)
    @given(graph_strategy, motif_strategy)
    def test_zero_delta_zero_multi_edge_matches(self, g, motif):
        """With δ=0 no multi-edge motif can fit (strictly increasing times)."""
        if motif.num_edges > 1:
            assert count_motifs(g, motif, 0) == 0


class TestDeltaBoundary:
    """Shared δ-boundary adversarial cases (``delta_cases.py``): matches
    spanning exactly δ (inclusive ``t_l - t_1 <= δ``, §II-A), duplicate
    timestamps at the window edge, and self-loop-free invariants —
    asserted identically against mackey, bruteforce, taskcentric,
    streaming, the shared-traversal co-miner, the batched engine, and
    cluster dispatch across worker nodes."""

    @pytest.mark.parametrize("backend", sorted(EXTENDED_COUNT_BACKENDS))
    @pytest.mark.parametrize(
        "case", DELTA_BOUNDARY_CASES, ids=lambda c: c.name
    )
    def test_boundary_case(self, backend, case):
        count = EXTENDED_COUNT_BACKENDS[backend]
        assert count(case.graph(), case.motif, case.delta) == case.expected, (
            f"{backend} disagrees on {case.name}"
        )

    @pytest.mark.parametrize(
        "case", DELTA_BOUNDARY_CASES, ids=lambda c: c.name
    )
    def test_all_backends_agree_at_perturbed_deltas(self, case):
        """Beyond the pinned expectation: at δ±1 all four backends still
        agree with the brute-force oracle (the off-by-one hot zone)."""
        g = case.graph()
        for delta in (max(0, case.delta - 1), case.delta + 1):
            expected = COUNT_BACKENDS["bruteforce"](g, case.motif, delta)
            for backend, count in COUNT_BACKENDS.items():
                assert count(g, case.motif, delta) == expected, (
                    f"{backend} disagrees at delta={delta} on {case.name}"
                )

    @settings(max_examples=30, deadline=None)
    @given(graph_strategy, motif_strategy, delta_strategy)
    def test_self_loops_never_change_counts(self, g, motif, delta):
        """Lacing a self-loop after every edge leaves every backend's
        count unchanged (self-loop-free invariant).  Times are doubled so
        the loops occupy fresh timestamps — match spans scale by exactly
        2, so counting at 2δ isolates the self-loop effect from the
        timestamp-uniquification nudge."""
        base = count_motifs(g, motif, delta)
        laced = []
        for s, d, t in zip(g.src.tolist(), g.dst.tolist(), g.ts.tolist()):
            laced.append((s, d, 2 * t))
            laced.append((s, s, 2 * t + 1))
        laced_graph = TemporalGraph(laced, num_nodes=g.num_nodes)
        for backend, count in COUNT_BACKENDS.items():
            assert count(laced_graph, motif, 2 * delta) == base, (
                f"{backend} count changed when self-loops were laced in"
            )


class TestCoMiningFamilies:
    """The shared-traversal co-miner against the per-motif loop, as a
    *family*: one traversal must reproduce not only every motif's count
    but its exact per-motif search counters (the engine's byte-parity
    contract)."""

    @settings(max_examples=30, deadline=None)
    @given(graph_strategy, delta_strategy)
    def test_family_counts_and_counters_equal_dedicated_miners(
        self, g, delta
    ):
        from repro.comine import CoMiner

        result = CoMiner(g, MOTIFS, delta).mine()
        for i, motif in enumerate(MOTIFS):
            solo = MackeyMiner(g, motif, delta).mine()
            assert result.counts[i] == solo.count, motif.name
            assert (
                result.per_motif[i].as_dict() == solo.counters.as_dict()
            ), motif.name

    @settings(max_examples=20, deadline=None)
    @given(graph_strategy, delta_strategy, st.permutations(range(4)))
    def test_family_order_does_not_change_results(self, g, delta, order):
        from repro.comine import CoMiner

        base = CoMiner(g, MOTIFS, delta).mine()
        permuted = CoMiner(g, [MOTIFS[i] for i in order], delta).mine()
        for pos, i in enumerate(order):
            assert permuted.counts[pos] == base.counts[i]
            assert (
                permuted.per_motif[pos].as_dict()
                == base.per_motif[i].as_dict()
            )
        assert (
            permuted.counters.as_dict() == base.counters.as_dict()
        )


class TestBatchedFrontier:
    """The vectorized frontier engine against the scalar miner: counts
    AND the full `SearchCounters` must match byte-for-byte on arbitrary
    graphs, windows, and root-block sizes (the block size may change
    memory behaviour, never results)."""

    @settings(max_examples=30, deadline=None)
    @given(graph_strategy, motif_strategy, delta_strategy,
           st.integers(1, 40))
    def test_counts_and_counters_equal_mackey(self, g, motif, delta, block):
        from repro.mining.batched import BatchedMiner

        scalar = MackeyMiner(g, motif, delta).mine()
        batched = BatchedMiner(g, motif, delta, root_block=block).mine()
        assert batched.count == scalar.count
        assert batched.counters.as_dict() == scalar.counters.as_dict()

    @settings(max_examples=20, deadline=None)
    @given(graph_strategy, motif_strategy, delta_strategy,
           st.integers(1, 15))
    def test_mine_range_chunks_merge_to_full_run(self, g, motif, delta, step):
        from repro.mining.batched import BatchedMiner
        from repro.mining.results import SearchCounters

        miner = BatchedMiner(g, motif, delta, root_block=7)
        full = miner.mine()
        total = 0
        merged = SearchCounters()
        for lo in range(0, g.num_edges, step):
            chunk = miner.mine_range(lo, lo + step)
            total += chunk.count
            merged.merge(chunk.counters)
        assert total == full.count
        assert merged.as_dict() == full.counters.as_dict()
