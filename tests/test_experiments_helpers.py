"""Unit tests for the experiment helpers and result dataclasses."""

import pytest

from repro.analysis import experiments as ex
from repro.motifs.catalog import M1, M2

POLICY = ex.ScalePolicy(scale=0.04, num_pes=16, presto_samples=4)


class TestWorkloadEvaluation:
    @pytest.fixture(scope="class")
    def ev(self):
        return ex.evaluate_workload("email-eu", M1, POLICY)

    def test_speedups_positive(self, ev):
        assert ev.speedup_vs_cpu > 0
        assert ev.speedup_vs_cpu_memo > 0
        assert ev.speedup_vs_gpu > 0
        assert ev.memo_gain > 0
        assert ev.traffic_reduction > 0

    def test_mint_time_is_memoized_sim(self, ev):
        assert ev.mint_s == ev.sim_memo.seconds

    def test_counts_consistent(self, ev):
        assert ev.sim_memo.matches == ev.matches
        assert ev.sim_plain.matches == ev.matches
        assert ev.mackey_counters.matches == ev.matches

    def test_cache_returns_same_object(self):
        a = ex.evaluate_workload("email-eu", M1, POLICY)
        b = ex.evaluate_workload("email-eu", M1, POLICY)
        assert a is b

    def test_cache_distinguishes_policies(self):
        other = ex.ScalePolicy(scale=0.05, num_pes=16, presto_samples=4)
        a = ex.evaluate_workload("email-eu", M1, POLICY)
        b = ex.evaluate_workload("email-eu", M1, other)
        assert a is not b


class TestTimeHelpers:
    def test_presto_time_positive(self):
        w = ex.build_workload("email-eu", POLICY)
        cpu = ex.scaled_cpu_model(w)
        seconds, err = ex._presto_time_s(w, M1, POLICY, cpu)
        assert seconds > 0
        assert err >= 0

    def test_paranjape_time_positive(self):
        w = ex.build_workload("email-eu", POLICY)
        cpu = ex.scaled_cpu_model(w)
        assert ex._paranjape_time_s(w, M1, POLICY, cpu) > 0

    def test_paranjape_extrapolation_scales_up(self):
        """A tight budget must extrapolate to at least the budgeted cost."""
        w = ex.build_workload("email-eu", POLICY)
        cpu = ex.scaled_cpu_model(w)
        import dataclasses

        tight = dataclasses.replace(POLICY, paranjape_budget=3)
        full_t = ex._paranjape_time_s(w, M1, POLICY, cpu)
        tight_t = ex._paranjape_time_s(w, M1, tight, cpu)
        # Extrapolated estimate is in the right ballpark of the full run.
        assert tight_t == pytest.approx(full_t, rel=3.0)


class TestResultDataclasses:
    def test_fig10_geomeans(self):
        res = ex.run_fig10(POLICY, datasets=("email-eu",), motifs=(M1, M2))
        assert res.geomean_speedup_memo() > 0
        assert res.geomean_memo_gain() > 0
        table = res.table()
        assert "geomean" in table and "M2" in table

    def test_fig11_table_renders_missing_paranjape(self):
        from repro.motifs.catalog import M4

        res = ex.run_fig11(POLICY, datasets=("email-eu",), motifs=(M4,))
        assert res.rows[0].vs_paranjape is None
        assert "-" in res.table()

    def test_fig13_grid_accessor(self):
        res = ex.run_fig13(
            POLICY, dataset="email-eu", pe_counts=(1, 4), cache_scales=(1.0,)
        )
        grid = res.grid("bandwidth_pct")
        assert set(grid) == {(1, 1.0), (4, 1.0)}

    def test_table1_rows_render(self):
        res = ex.run_table1(POLICY)
        assert len(res.table().splitlines()) == 8  # header + sep + 6 rows


class TestScaledConfigs:
    def test_large_dataset_gets_relatively_smaller_cache(self):
        em = ex.build_workload("email-eu", POLICY)
        so = ex.build_workload("stackoverflow", POLICY)
        c_em = ex.scaled_mint_config(em, POLICY)
        c_so = ex.scaled_mint_config(so, POLICY)
        ratio_em = em.working_set_bytes / c_em.cache.total_bytes
        ratio_so = so.working_set_bytes / c_so.cache.total_bytes
        assert ratio_so > ratio_em  # stackoverflow spills harder

    def test_memoize_flag_passthrough(self):
        w = ex.build_workload("email-eu", POLICY)
        assert ex.scaled_mint_config(w, POLICY, memoize=False).memoize is False
