"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.graph.temporal_graph import TemporalGraph


def random_temporal_graph(
    rng: random.Random,
    num_nodes: int,
    num_edges: int,
    time_range: int = 1000,
    allow_self_loops: bool = False,
) -> TemporalGraph:
    """Build a uniformly random temporal graph for property tests."""
    edges: List[Tuple[int, int, int]] = []
    for _ in range(num_edges):
        s = rng.randrange(num_nodes)
        d = rng.randrange(num_nodes)
        if not allow_self_loops and d == s and num_nodes > 1:
            d = (d + 1) % num_nodes
        edges.append((s, d, rng.randrange(time_range)))
    return TemporalGraph(edges, num_nodes=num_nodes)


@pytest.fixture
def tiny_graph() -> TemporalGraph:
    """The walk-through example of the paper's Fig. 1/4.

    Edges (index: src->dst @t): 0: 0->1@5, 1: 1->2@10, 2: 2->0@20,
    3: 2->3@25, 4: 1->2@30, 5: 0->1@40.
    """
    return TemporalGraph(
        [
            (0, 1, 5),
            (1, 2, 10),
            (2, 0, 20),
            (2, 3, 25),
            (1, 2, 30),
            (0, 1, 40),
        ]
    )


@pytest.fixture
def chain_graph() -> TemporalGraph:
    """A time-ordered chain a->b->c->d->e with one edge per step."""
    return TemporalGraph(
        [(0, 1, 10), (1, 2, 20), (2, 3, 30), (3, 4, 40)]
    )


@pytest.fixture
def burst_graph() -> TemporalGraph:
    """Bursty multi-edges between few nodes; exercises repeated pairs."""
    return TemporalGraph(
        [
            (0, 1, 1),
            (1, 0, 2),
            (0, 1, 3),
            (1, 0, 4),
            (0, 2, 5),
            (2, 1, 6),
            (0, 1, 7),
            (1, 2, 8),
            (2, 0, 9),
        ]
    )
