"""Tests for workload profiling and the extension experiments."""

import pytest

from repro.analysis.extensions import arbitrary_motif_sweep, presto_on_mint
from repro.baselines.cpu_model import CpuModel, CpuSpec
from repro.graph.generators import make_dataset
from repro.graph.stats import storage_bytes
from repro.mining.mackey import count_motifs
from repro.motifs.catalog import M1
from repro.motifs.grid import grid_motifs
from repro.sim.config import CacheConfig, MintConfig
from repro.sim.trace import profile_workload


@pytest.fixture(scope="module")
def workload():
    g = make_dataset("wiki-talk", scale=0.05, seed=17)
    return g, g.time_span // 30


def small_config():
    return MintConfig(num_pes=16, cache=CacheConfig(num_banks=16, bank_kb=2))


class TestProfiling:
    def test_profile_covers_all_roots(self, workload):
        g, delta = workload
        profile = profile_workload(g, M1, delta)
        assert len(profile.trees) == g.num_edges
        assert profile.total_matches() == count_motifs(g, M1, delta)

    def test_max_roots_cap(self, workload):
        g, delta = workload
        profile = profile_workload(g, M1, delta, max_roots=10)
        assert len(profile.trees) == 10

    def test_imbalance_metrics(self, workload):
        g, delta = workload
        profile = profile_workload(g, M1, delta)
        assert profile.load_imbalance() >= 1.0
        assert 0.0 <= profile.gini() <= 1.0

    def test_top_trees_sorted_by_weight(self, workload):
        g, delta = workload
        profile = profile_workload(g, M1, delta)
        top = profile.top_trees(3)
        assert top[0].weight >= top[1].weight >= top[2].weight

    def test_hub_graphs_are_skewed(self):
        """The heavy-tailed datasets must show concentrated tree weights —
        the scaled-workload hazard DESIGN.md documents."""
        g = make_dataset("stackoverflow", scale=0.04, seed=17)
        profile = profile_workload(g, M1, g.time_span // 25)
        assert profile.gini() > 0.3


class TestPrestoOnMint:
    def test_extension_runs_and_wins(self, workload):
        g, delta = workload
        cpu = CpuModel(CpuSpec().scaled_llc(0.001))
        result = presto_on_mint(
            g,
            M1,
            delta,
            small_config(),
            cpu,
            storage_bytes(g),
            num_samples=6,
            seed=2,
        )
        assert result.mint_cycles > 0
        # Mint accelerates the PRESTO subroutine (§II-C's claim).
        assert result.speedup > 1.0
        assert result.relative_error >= 0.0


class TestArbitraryMotifs:
    def test_grid_subset_exact_on_simulator(self, workload):
        g, delta = workload
        motifs = grid_motifs()[::6]  # 6 spread across the grid
        results = arbitrary_motif_sweep(g, delta, small_config(), motifs=motifs)
        assert len(results) == 6
        for r in results:
            assert r.exact, r.motif_name
