"""Unit tests for the deterministic fault-injection primitive.

The chaos suite's value rests on :class:`FaultPlan` being exactly
reproducible: the same plan fires the same fault at the same call on
every run, counters are process-local (pickling strips them), and an
uninstalled plan costs nothing.  These tests pin that contract without
spawning any processes.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.resilience import FaultPlan, FaultSpec, InjectedFault, active_plan
from repro.resilience.faults import fault_point


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("s", "explode")
        with pytest.raises(ValueError):
            FaultSpec("s", "kill", at_call=0)
        with pytest.raises(ValueError):
            FaultSpec("s", "delay", delay_s=-1.0)

    def test_worker_scoping(self):
        spec = FaultSpec("s", "raise", at_call=2, worker=7)
        assert not spec.matches(2, worker=3)
        assert not spec.matches(1, worker=7)
        assert spec.matches(2, worker=7)
        wildcard = FaultSpec("s", "raise", at_call=2)
        assert wildcard.matches(2, worker=None)
        assert wildcard.matches(2, worker=99)


class TestFaultPlan:
    def test_no_plan_is_a_noop(self):
        assert active_plan() is None
        fault_point("anything", worker=1)  # must not raise

    def test_raise_fires_on_exact_call(self):
        plan = FaultPlan.raise_at("site", [3], message="boom")
        with plan.installed():
            fault_point("site")
            fault_point("site")
            with pytest.raises(InjectedFault, match="boom"):
                fault_point("site")
            # Call 4 and beyond are clean again.
            fault_point("site")
        assert len(plan.fired) == 1
        assert active_plan() is None

    def test_counters_are_per_site(self):
        plan = FaultPlan.raise_at("b", [2])
        with plan.installed():
            fault_point("a")
            fault_point("a")
            fault_point("b")  # b's first call, not its second
            with pytest.raises(InjectedFault):
                fault_point("b")

    def test_deterministic_across_installs(self):
        plan = FaultPlan.raise_at("s", [2])
        for _ in range(3):  # install resets the counters every time
            with plan.installed():
                fault_point("s")
                with pytest.raises(InjectedFault):
                    fault_point("s")

    def test_delay_sleeps(self):
        plan = FaultPlan([FaultSpec("s", "delay", delay_s=0.05)])
        with plan.installed():
            t0 = time.monotonic()
            fault_point("s")
            assert time.monotonic() - t0 >= 0.04

    def test_worker_scoped_kill_ignores_other_workers(self):
        # A kill aimed at worker 5 must not fire for worker 0's calls.
        # (We test via matches(), not os._exit, for obvious reasons.)
        plan = FaultPlan.kill_worker(5, at_chunk=1)
        spec = plan.specs[0]
        assert spec.action == "kill" and spec.worker == 5
        assert not spec.matches(1, worker=0)
        assert spec.matches(1, worker=5)

    def test_kill_every_worker_is_wildcard(self):
        plan = FaultPlan.kill_every_worker(at_chunk=2)
        (spec,) = plan.specs
        assert spec.worker is None and spec.at_call == 2

    def test_random_kills_is_seeded(self):
        a = FaultPlan.random_kills(9, num_workers=4, kills=2)
        b = FaultPlan.random_kills(9, num_workers=4, kills=2)
        assert a.specs == b.specs
        assert len(a.specs) == 2
        assert len({s.worker for s in a.specs}) == 2
        with pytest.raises(ValueError):
            FaultPlan.random_kills(0, num_workers=2, kills=3)

    def test_pickle_strips_counters(self):
        plan = FaultPlan.raise_at("s", [1])
        with plan.installed():
            with pytest.raises(InjectedFault):
                fault_point("s")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.specs == plan.specs
        assert clone.fired == []  # fresh counters in the receiving process
        with clone.installed():
            with pytest.raises(InjectedFault):
                fault_point("s")

    def test_uninstall_only_removes_self(self):
        first, second = FaultPlan(), FaultPlan()
        first.install()
        second.install()
        first.uninstall()  # not active anymore; must not clobber second
        assert active_plan() is second
        second.uninstall()
        assert active_plan() is None
