"""Detail tests for walker statistics and operation accounting."""

import pytest

from repro.graph.generators import make_dataset
from repro.mining.mackey import MackeyMiner
from repro.motifs.catalog import M1, M4
from repro.sim.layout import GraphMemoryLayout
from repro.sim.walker import TraceWalker


def run_walker(graph, motif, delta, **kw):
    layout = GraphMemoryLayout.for_graph(graph)
    walker = TraceWalker(graph, motif, delta, layout, **kw)
    ops = []
    for root in range(graph.num_edges):
        walker.begin_root(root)
        state = walker.new_tree_state()
        ops.extend(walker.walk(root, state))
        walker.end_root(root)
    return walker, ops


@pytest.fixture(scope="module")
def workload():
    g = make_dataset("mathoverflow", scale=0.06, seed=31)
    return g, g.time_span // 30


class TestStatsInvariants:
    def test_bookkeeps_equal_backtracks(self, workload):
        g, delta = workload
        walker, _ = run_walker(g, M1, delta)
        assert walker.stats.bookkeeps == walker.stats.backtracks

    def test_searches_equal_phase1_scans_for_connected_motifs(self, workload):
        g, delta = workload
        walker, _ = run_walker(g, M1, delta)
        assert walker.stats.searches == walker.stats.phase1_scans

    def test_candidates_match_software(self, workload):
        """Phase-2 record fetches equal the software's candidate scans."""
        g, delta = workload
        walker, _ = run_walker(g, M1, delta)
        sw = MackeyMiner(g, M1, delta).mine()
        assert walker.stats.edge_records_fetched == sw.counters.candidates_scanned

    def test_memo_reads_once_per_scan(self, workload):
        g, delta = workload
        walker, _ = run_walker(g, M1, delta, memoize=True)
        assert walker.stats.memo_reads == walker.stats.phase1_scans

    def test_tree_cache_hits_only_when_enabled(self, workload):
        g, delta = workload
        with_cache, _ = run_walker(g, M4, delta, per_tree_index_cache=True)
        without, _ = run_walker(g, M4, delta, per_tree_index_cache=False)
        assert with_cache.stats.tree_cache_hits >= 0
        assert without.stats.tree_cache_hits == 0


class TestOpAccounting:
    def test_ctx_ops_match_task_counts(self, workload):
        """One ctx op per dispatch, bookkeep and backtrack."""
        g, delta = workload
        walker, ops = run_walker(g, M1, delta, memoize=False)
        ctx_ops = sum(1 for op in ops if op[0] == "ctx")
        s = walker.stats
        assert ctx_ops == s.searches + s.bookkeeps + s.backtracks

    def test_stream_bytes_match_items(self, workload):
        g, delta = workload
        walker, ops = run_walker(g, M1, delta, memoize=False)
        stream_bytes = sum(op[2] for op in ops if op[0] == "stream")
        assert stream_bytes == walker.stats.index_items_streamed * 4

    def test_readv_records_match_fetch_count(self, workload):
        g, delta = workload
        walker, ops = run_walker(g, M1, delta)
        fetched = sum(len(op[1]) for op in ops if op[0] == "readv")
        assert fetched == walker.stats.edge_records_fetched

    def test_writes_match_memo_writes(self, workload):
        g, delta = workload
        walker, ops = run_walker(g, M1, delta, memoize=True)
        writes = sum(1 for op in ops if op[0] == "write")
        assert writes == walker.stats.memo_writes

    def test_phase2_batches_respect_window(self, workload):
        g, delta = workload
        _, ops = run_walker(g, M1, delta, phase2_window=3)
        for op in ops:
            if op[0] == "readv":
                assert 1 <= len(op[1]) <= 3
