"""HTTP surface of repro.live: ingest routes, long-poll, SSE push, and
the bounded-outbox slow-consumer guarantees."""

from __future__ import annotations

import json
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.graph.generators import make_dataset
from repro.service import MotifService, make_server

DELTA = 1_000_000


@pytest.fixture
def live_server():
    service = MotifService(max_queue=8)
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    conn = HTTPConnection(host, port, timeout=30)
    try:
        yield conn, service, (host, port)
    finally:
        conn.close()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        service.close()


def request(conn, method, path, body=None, headers=None):
    payload = None if body is None else json.dumps(body)
    hdrs = dict(headers or {})
    if payload:
        hdrs.setdefault("Content-Type", "application/json")
    conn.request(method, path, body=payload, headers=hdrs)
    resp = conn.getresponse()
    raw = resp.read()
    return resp, json.loads(raw) if raw else {}


def create_feed(conn, name="feed", delta=DELTA, **extra):
    body = {"name": name, "delta": delta}
    body.update(extra)
    resp, out = request(conn, "POST", "/live", body)
    assert resp.status == 200, out
    return out


def parse_sse(raw):
    """Split an SSE byte stream into frames ({'id','event','data'}) and
    comment lines (heartbeats)."""
    frames, comments = [], []
    for chunk in raw.decode("utf-8").split("\n\n"):
        if not chunk.strip():
            continue
        frame = {}
        for line in chunk.splitlines():
            if line.startswith(":"):
                comments.append(line)
                continue
            key, _, value = line.partition(":")
            frame[key] = value.strip()
        if frame:
            frames.append(frame)
    return frames, comments


class TestLiveRoutes:
    def test_create_list_status_drop(self, live_server):
        conn, _, _ = live_server
        out = create_feed(conn, lateness=5, reorder_capacity=64)
        assert out["graph"] == "feed" and out["version"] == 0
        resp, listing = request(conn, "GET", "/live")
        assert resp.status == 200 and listing["live"] == ["feed"]
        resp, status = request(conn, "GET", "/live/feed")
        assert resp.status == 200
        assert status["reorder"]["capacity"] == 64
        resp, _ = request(conn, "DELETE", "/live/feed")
        assert resp.status == 200
        resp, _ = request(conn, "GET", "/live/feed")
        assert resp.status == 404

    def test_create_rejects_collisions_and_bad_input(self, live_server):
        conn, service, _ = live_server
        g = make_dataset("email-eu", scale=0.02, seed=0)
        service.register_graph(g, name="static")
        resp, _ = request(conn, "POST", "/live",
                          {"name": "static", "delta": DELTA})
        assert resp.status == 400
        create_feed(conn)
        resp, _ = request(conn, "POST", "/live",
                          {"name": "feed", "delta": DELTA})
        assert resp.status == 400
        resp, _ = request(conn, "POST", "/live", {"name": "x"})
        assert resp.status == 400  # missing delta

    def test_append_acks_and_idempotency(self, live_server):
        conn, _, _ = live_server
        create_feed(conn)
        batch = {"edges": [[0, 1, 10], [1, 2, 20]], "seq": 1}
        resp, ack = request(conn, "POST", "/graphs/feed/edges", batch)
        assert resp.status == 200
        assert ack["released"] == 2 and ack["version"] == 1
        assert not ack["duplicate"]
        resp, dup = request(conn, "POST", "/graphs/feed/edges", batch)
        assert resp.status == 200
        assert dup["duplicate"] and dup["version"] == 1
        resp, status = request(conn, "GET", "/live/feed")
        assert status["num_edges"] == 2  # applied exactly once

    def test_append_error_mapping(self, live_server):
        conn, _, _ = live_server
        create_feed(conn)
        resp, _ = request(conn, "POST", "/graphs/nope/edges",
                          {"edges": [[0, 1, 1]]})
        assert resp.status == 404
        resp, _ = request(conn, "POST", "/graphs/feed/edges",
                          {"edges": [[0, -1, 1]]})
        assert resp.status == 400
        resp, _ = request(conn, "POST", "/graphs/feed/edges",
                          {"edges": "nope"})
        assert resp.status == 400

    def test_live_graph_answers_queries(self, live_server):
        conn, _, _ = live_server
        create_feed(conn)
        # M1 = triangle a->b, b->c, c->a within delta.
        edges = [[0, 1, 10], [1, 2, 20], [2, 0, 30]]
        request(conn, "POST", "/graphs/feed/edges",
                {"edges": edges, "seq": 0})
        resp, body = request(conn, "POST", "/query",
                             {"graph": "feed", "motif": "M1", "delta": DELTA})
        assert resp.status == 200
        assert body["count"] == 1


class TestSubscriptionRoutes:
    def subscribe(self, conn, **body):
        body.setdefault("graph", "feed")
        body.setdefault("motif", "M1")
        resp, out = request(conn, "POST", "/subscriptions", body)
        assert resp.status == 200, out
        return out

    def test_subscribe_kind_defaulting(self, live_server):
        conn, _, _ = live_server
        create_feed(conn)
        plain = self.subscribe(conn)
        assert plain["kind"] == "update" and plain["delta"] == DELTA
        alert = self.subscribe(conn, threshold=3)
        assert alert["kind"] == "threshold" and alert["threshold"] == 3
        resp, listing = request(conn, "GET", "/subscriptions")
        ids = set(listing["subscriptions"])
        assert {plain["subscription"], alert["subscription"]} <= ids

    def test_subscribe_error_mapping(self, live_server):
        conn, _, _ = live_server
        create_feed(conn)
        resp, _ = request(conn, "POST", "/subscriptions",
                          {"graph": "nope", "motif": "M1"})
        assert resp.status == 404
        resp, _ = request(conn, "POST", "/subscriptions",
                          {"graph": "feed", "motif": "no-such-motif"})
        assert resp.status == 404  # same mapping as /query's motif lookup
        resp, _ = request(conn, "POST", "/subscriptions",
                          {"graph": "feed", "motif": "M1",
                           "kind": "threshold"})
        assert resp.status == 400  # threshold kind without threshold
        resp, _ = request(conn, "GET", "/subscriptions/sub-999")
        assert resp.status == 404

    def test_unsubscribe(self, live_server):
        conn, _, _ = live_server
        create_feed(conn)
        sub = self.subscribe(conn)
        sid = sub["subscription"]
        resp, _ = request(conn, "DELETE", f"/subscriptions/{sid}")
        assert resp.status == 200
        resp, _ = request(conn, "GET", f"/subscriptions/{sid}")
        assert resp.status == 404

    def test_long_poll_returns_queued_events(self, live_server):
        conn, _, _ = live_server
        create_feed(conn)
        sid = self.subscribe(conn)["subscription"]
        request(conn, "POST", "/graphs/feed/edges",
                {"edges": [[0, 1, 10]], "seq": 0})
        resp, out = request(
            conn, "GET", f"/subscriptions/{sid}/poll?after=0&timeout_s=5")
        assert resp.status == 200
        assert out["subscription"] == sid
        assert [e["seq"] for e in out["events"]] == [1]
        assert out["next_after"] == 1 and not out["closed"]
        # Cursor past the end + tiny timeout: clean empty page.
        resp, out = request(
            conn, "GET", f"/subscriptions/{sid}/poll?after=1&timeout_s=0")
        assert out["events"] == [] and out["next_after"] == 1

    def test_long_poll_wakes_on_ingest(self, live_server):
        conn, _, addr = live_server
        create_feed(conn)
        sid = self.subscribe(conn)["subscription"]

        def feed_later():
            time.sleep(0.2)
            side = HTTPConnection(*addr, timeout=10)
            try:
                request(side, "POST", "/graphs/feed/edges",
                        {"edges": [[0, 1, 10]], "seq": 0})
            finally:
                side.close()

        t = threading.Thread(target=feed_later)
        t.start()
        t0 = time.monotonic()
        resp, out = request(
            conn, "GET", f"/subscriptions/{sid}/poll?after=0&timeout_s=10")
        waited = time.monotonic() - t0
        t.join()
        assert len(out["events"]) == 1
        assert waited < 8  # woke on the append, not the timeout

    def test_sse_stream_and_resume(self, live_server):
        conn, _, addr = live_server
        create_feed(conn)
        sid = self.subscribe(conn)["subscription"]
        for i in range(3):
            request(conn, "POST", "/graphs/feed/edges",
                    {"edges": [[0, 1, 10 * (i + 1)]], "seq": i})

        sse = HTTPConnection(*addr, timeout=30)
        try:
            sse.request("GET", f"/subscriptions/{sid}/events?max_events=3")
            resp = sse.getresponse()
            assert resp.status == 200
            assert resp.getheader("Content-Type").startswith(
                "text/event-stream")
            frames, _ = parse_sse(resp.read())
        finally:
            sse.close()
        assert [f["id"] for f in frames] == ["1", "2", "3"]
        assert all(f["event"] == "update" for f in frames)
        payloads = [json.loads(f["data"]) for f in frames]
        assert [p["version"] for p in payloads] == [1, 2, 3]

        # Resume via Last-Event-ID skips already-seen events.
        sse = HTTPConnection(*addr, timeout=30)
        try:
            sse.request("GET", f"/subscriptions/{sid}/events?max_events=1",
                        headers={"Last-Event-ID": "2"})
            frames, _ = parse_sse(sse.getresponse().read())
        finally:
            sse.close()
        assert [f["id"] for f in frames] == ["3"]

    def test_sse_heartbeats_while_idle(self, live_server):
        conn, _, addr = live_server
        create_feed(conn)
        sid = self.subscribe(conn)["subscription"]
        request(conn, "POST", "/graphs/feed/edges",
                {"edges": [[0, 1, 10]], "seq": 0})
        sse = HTTPConnection(*addr, timeout=30)
        try:
            # One event is pending; the second never comes, so the
            # stream idles and must emit heartbeat comments meanwhile.
            sse.request(
                "GET",
                f"/subscriptions/{sid}/events?max_events=2&heartbeat_s=0.1",
            )
            resp = sse.getresponse()
            raw = b""
            deadline = time.monotonic() + 5
            while b": heartbeat" not in raw and time.monotonic() < deadline:
                raw += resp.read1(4096)
        finally:
            sse.close()
        frames, comments = parse_sse(raw)
        assert frames and frames[0]["id"] == "1"
        assert any("heartbeat" in c for c in comments)


class TestSlowConsumer:
    """Satellite: a wedged subscriber must not block ingest or peers."""

    NUM_SUBS = 64
    CAPACITY = 8
    BATCHES = 40

    def test_wedged_subscriber_is_isolated(self):
        with MotifService(max_queue=8) as svc:
            svc.create_live_graph("feed", DELTA)
            subs = [
                svc.subscribe("feed", "M1", outbox_capacity=self.CAPACITY)
                for _ in range(self.NUM_SUBS)
            ]
            wedged, keeper, peers = subs[0], subs[1], subs[2:]

            kept = []
            t0 = time.monotonic()
            for i in range(self.BATCHES):
                svc.append_live("feed", [(0, 1, 10 * (i + 1))], seq=i)
                # The diligent consumer drains after every batch.
                kept.extend(
                    keeper.outbox.read_after(
                        kept[-1]["seq"] if kept else 0)
                )
            elapsed = time.monotonic() - t0

            # Ingest ran at full speed: nothing waited on the wedged
            # subscriber (64 subs x 40 batches in well under a minute).
            assert elapsed < 30
            status = svc.live_status("feed")
            assert status["version"] == self.BATCHES

            # The diligent consumer saw every event, gapless.
            assert [e["seq"] for e in kept] == \
                list(range(1, self.BATCHES + 1))
            assert not any(e["type"] == "gap" for e in kept)

            # The wedged outbox stayed bounded and its eventual read
            # starts with an honest gap notification.
            stats = wedged.outbox.stats()
            assert stats["retained"] <= self.CAPACITY
            assert stats["dropped"] == self.BATCHES - self.CAPACITY
            events = wedged.outbox.read_after(0)
            assert events[0]["type"] == "gap"
            assert events[0]["dropped"] == self.BATCHES - self.CAPACITY
            assert [e["seq"] for e in events[1:]] == list(
                range(self.BATCHES - self.CAPACITY + 1, self.BATCHES + 1))

            # Peers all received the full tail independently.
            for sub in peers:
                tail = sub.outbox.read_after(0)
                assert tail[-1]["seq"] == self.BATCHES

            # Drop/gap accounting reaches the service metrics.
            m = svc.metrics()
            assert m.events_dropped >= self.BATCHES - self.CAPACITY
            assert m.gap_events >= 1
            assert m.live_subscriptions == self.NUM_SUBS
