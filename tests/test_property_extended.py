"""Extended property-based tests: transforms, cycles, grid, time series."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.timeseries import motif_count_timeseries
from repro.graph.temporal_graph import TemporalGraph
from repro.graph.transforms import (
    compact_node_ids,
    induced_subgraph,
    merge,
    temporal_split,
)
from repro.mining.cycles import count_temporal_cycles
from repro.mining.mackey import count_motifs
from repro.mining.multi import count_motif_family
from repro.motifs.catalog import M1, PING_PONG
from repro.motifs.grid import grid_motifs

from test_property import temporal_graphs

graph_strategy = temporal_graphs()
nonempty_graphs = temporal_graphs().filter(lambda g: g.num_edges >= 2)


class TestTransformProperties:
    @settings(max_examples=40, deadline=None)
    @given(nonempty_graphs, st.floats(0.1, 0.9))
    def test_split_then_merge_is_identity(self, g, frac):
        train, test = temporal_split(g, frac)
        merged = merge([train, test])
        assert [e.as_tuple() for e in merged.edges()] == [
            e.as_tuple() for e in g.edges()
        ]

    @settings(max_examples=40, deadline=None)
    @given(graph_strategy)
    def test_compact_preserves_edge_structure(self, g):
        compacted, mapping = compact_node_ids(g)
        assert compacted.num_edges == g.num_edges
        for old, new in mapping.items():
            assert 0 <= new < len(mapping)
        # Degrees are permuted, not changed.
        old_deg = sorted(
            g.out_degree(u) for u in range(g.num_nodes) if g.out_degree(u)
        )
        new_deg = sorted(
            compacted.out_degree(u)
            for u in range(compacted.num_nodes)
            if compacted.out_degree(u)
        )
        assert old_deg == new_deg

    @settings(max_examples=40, deadline=None)
    @given(graph_strategy, st.integers(0, 40))
    def test_induced_subgraph_monotone_counts(self, g, delta):
        """Counts on an induced subgraph never exceed the full graph's."""
        nodes = range(0, g.num_nodes, 2)
        sub = induced_subgraph(g, nodes)
        assert count_motifs(sub, M1, delta) <= count_motifs(g, M1, delta)


class TestCycleProperties:
    @settings(max_examples=50, deadline=None)
    @given(graph_strategy, st.integers(0, 50))
    def test_cycle_specialist_equals_generic(self, g, delta):
        assert count_temporal_cycles(g, 2, delta) == count_motifs(
            g, PING_PONG, delta
        )
        assert count_temporal_cycles(g, 3, delta) == count_motifs(g, M1, delta)


class TestCensusProperties:
    @settings(max_examples=20, deadline=None)
    @given(graph_strategy, st.integers(1, 40))
    def test_census_totals_consistent(self, g, delta):
        motifs = grid_motifs()[:4]
        census = count_motif_family(g, motifs, delta)
        assert census.total() == sum(
            count_motifs(g, m, delta) for m in motifs
        )


class TestTimeSeriesProperties:
    @settings(max_examples=30, deadline=None)
    @given(nonempty_graphs, st.integers(1, 40), st.integers(1, 12))
    def test_bucket_totals_equal_exact_count(self, g, delta, buckets):
        series = motif_count_timeseries(g, PING_PONG, delta, num_buckets=buckets)
        assert series.total == count_motifs(g, PING_PONG, delta)
        assert (series.counts >= 0).all()
