"""Tests for complexity sweeps (§III-A) and node motif features."""

import numpy as np
import pytest

from repro.analysis.sweeps import SweepResult, SweepPoint, delta_sweep, motif_size_sweep
from repro.graph.generators import make_dataset
from repro.mining.features import motif_feature_matrix, node_motif_counts
from repro.mining.mackey import MackeyMiner
from repro.motifs.catalog import M1, PING_PONG


@pytest.fixture(scope="module")
def graph():
    return make_dataset("email-eu", scale=0.15, seed=21)


class TestDeltaSweep:
    def test_work_grows_with_delta(self, graph):
        span = graph.time_span
        sweep = delta_sweep(graph, M1, [span // 200, span // 50, span // 10])
        cands = [p.candidates for p in sweep.points]
        assert cands == sorted(cands)
        assert cands[-1] > cands[0]

    def test_matches_grow_with_delta(self, graph):
        span = graph.time_span
        sweep = delta_sweep(graph, M1, [span // 200, span // 10])
        assert sweep.points[-1].matches >= sweep.points[0].matches

    def test_growth_exponent_positive(self, graph):
        span = graph.time_span
        sweep = delta_sweep(
            graph, M1, [span // 400, span // 100, span // 25, span // 8]
        )
        # §III-A: for a 3-edge motif the width term is ~k^2; measured
        # exponents land between linear and quadratic on real graphs.
        assert 0.3 < sweep.growth_exponent() < 3.0

    def test_window_edges_recorded(self, graph):
        span = graph.time_span
        sweep = delta_sweep(graph, M1, [span // 100])
        p = sweep.points[0]
        assert p.window_edges == pytest.approx(
            graph.num_edges * p.parameter / span
        )

    def test_growth_exponent_validation(self):
        sweep = SweepResult("x", [SweepPoint(1.0, 1.0, 10, 0, 1)])
        with pytest.raises(ValueError):
            sweep.growth_exponent()


class TestMotifSizeSweep:
    def test_work_grows_with_depth(self, graph):
        delta = graph.time_span // 30
        sweep = motif_size_sweep(graph, delta, sizes=(1, 2, 3, 4))
        cands = [p.candidates for p in sweep.points]
        assert cands[-1] >= cands[0]
        assert sweep.parameter_name == "motif_edges"

    def test_chain_motifs_alternate(self):
        from repro.analysis.sweeps import _chain_motif

        m = _chain_motif(4)
        assert m.edges == ((0, 1), (1, 0), (0, 1), (1, 0))


class TestNodeFeatures:
    def test_totals_consistent_with_matches(self, graph):
        delta = graph.time_span // 40
        feats = node_motif_counts(graph, M1, delta)
        count = MackeyMiner(graph, M1, delta).mine().count
        # Every match contributes one participation per motif node.
        assert feats.total.sum() == count * M1.num_nodes
        assert feats.per_role.sum() == count * M1.num_nodes

    def test_roles_partition_totals(self, graph):
        delta = graph.time_span // 40
        feats = node_motif_counts(graph, M1, delta)
        assert np.array_equal(feats.per_role.sum(axis=0), feats.total)

    def test_top_nodes_sorted(self, graph):
        delta = graph.time_span // 20
        feats = node_motif_counts(graph, M1, delta)
        top = feats.top_nodes(5)
        values = [feats.total[n] for n in top]
        assert values == sorted(values, reverse=True)

    def test_role_counts(self, graph):
        delta = graph.time_span // 20
        feats = node_motif_counts(graph, M1, delta)
        if feats.top_nodes(1):
            node = feats.top_nodes(1)[0]
            roles = feats.role_counts(node)
            assert sum(roles.values()) == feats.total[node]

    def test_feature_matrix_shape(self, graph):
        delta = graph.time_span // 40
        X = motif_feature_matrix(graph, [M1, PING_PONG], delta)
        assert X.shape == (graph.num_nodes, 2)
        assert X.dtype == np.int64
        assert (X >= 0).all()
