"""Deeper unit tests for the CPU model's individual mechanisms."""

import pytest

from repro.baselines.cpu_model import CpuModel, CpuSpec
from repro.mining.results import SearchCounters


def synthetic_counters(scale: int = 1000) -> SearchCounters:
    c = SearchCounters()
    c.candidates_scanned = 100 * scale
    c.binary_searches = 10 * scale
    c.binary_search_steps = 80 * scale
    c.bookkeeps = 20 * scale
    c.backtracks = 20 * scale
    c.searches = 30 * scale
    c.root_tasks = 10 * scale
    return c


class TestSerialComponents:
    def test_components_scale_linearly_with_work(self):
        m = CpuModel()
        t1 = m.runtime(synthetic_counters(1), 10**8, 1)
        t10 = m.runtime(synthetic_counters(10), 10**8, 1)
        assert t10.compute_s == pytest.approx(10 * t1.compute_s)
        assert t10.memory_s == pytest.approx(10 * t1.memory_s)
        assert t10.branch_s == pytest.approx(10 * t1.branch_s)

    def test_memory_grows_with_working_set(self):
        m = CpuModel()
        c = synthetic_counters()
        small = m.runtime(c, 10**6, 1).memory_s
        large = m.runtime(c, 10**10, 1).memory_s
        assert large > small

    def test_branch_cost_uses_spec(self):
        c = synthetic_counters()
        base = CpuModel(CpuSpec()).runtime(c, 10**8, 1).branch_s
        hot = CpuModel(
            CpuSpec(branch_mispredict_rate=0.5)
        ).runtime(c, 10**8, 1).branch_s
        assert hot > base


class TestThreading:
    def test_smt_region_helps_less(self):
        """Beyond physical cores, extra threads yield diminishing returns."""
        m = CpuModel()
        c = synthetic_counters(100)
        spec = m.spec
        t_at_cores = m.runtime(c, 10**10, spec.physical_cores)
        t_smt = m.runtime(c, 10**10, spec.physical_cores * 2)
        # Compute time shrinks, but by less than 2x.
        assert t_smt.compute_s < t_at_cores.compute_s
        assert t_smt.compute_s > t_at_cores.compute_s / 2

    def test_latency_inflation_throttles_scaling(self):
        c = synthetic_counters(100)
        no_inflation = CpuModel(
            CpuSpec(latency_inflation_per_64_threads=0.0)
        ).runtime(c, 10**10, 64)
        inflated = CpuModel(
            CpuSpec(latency_inflation_per_64_threads=2.0)
        ).runtime(c, 10**10, 64)
        assert inflated.memory_s > no_inflation.memory_s

    def test_bandwidth_floor_binds_with_low_peak_bw(self):
        """With a tiny bandwidth roofline, memory time stops scaling."""
        m = CpuModel(
            CpuSpec(latency_inflation_per_64_threads=0.0, peak_bw_gbps=1.0)
        )
        c = synthetic_counters(1000)
        ws = 10**10
        t128 = m.runtime(c, ws, 128).memory_s
        t256 = m.runtime(c, ws, 256).memory_s
        assert t256 == pytest.approx(t128)

    def test_overhead_linear_in_threads(self):
        m = CpuModel()
        c = synthetic_counters()
        t8 = m.runtime(c, 10**8, 8)
        t64 = m.runtime(c, 10**8, 64)
        assert t64.overhead_s == pytest.approx(8 * t8.overhead_s)


class TestStallFractions:
    def test_empty_run(self):
        m = CpuModel()
        t = m.runtime(SearchCounters(), 10**8, 1)
        fr = t.stall_fractions()
        assert fr["dram-stall"] == 0.0

    def test_fractions_are_probabilities(self):
        m = CpuModel()
        fr = m.runtime(synthetic_counters(), 10**9, 32).stall_fractions()
        for v in fr.values():
            assert 0.0 <= v <= 1.0
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_other_stalls_fixed_residual(self):
        m = CpuModel()
        fr = m.runtime(synthetic_counters(), 10**9, 32).stall_fractions()
        assert fr["other-stalls"] == pytest.approx(0.026)
